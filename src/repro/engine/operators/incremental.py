"""Delta-driven incremental execution: operators and materialized views.

The tick loop executes the same queries every tick, yet between ticks most
state tables change only sparsely (a few units move, one light switches).
The batch path still pays O(table) per tick to re-snapshot and re-scan.
This module instead maintains each registered query's *materialized result*
from per-tick deltas:

* :class:`DeltaScanOp` turns a table's change log
  (:meth:`repro.engine.table.Table.changes_since`) into a
  :class:`~repro.engine.batch.DeltaBatch` of signed base rows,
* :class:`DeltaFilterOp` / :class:`DeltaProjectOp` propagate both sides of
  a delta through pure row expressions,
* :class:`DeltaJoinOp` implements the classic bilinear join-delta rule
  ``Δ(A⋈B) = ΔA⋈Bnew ∪ Anew⋈ΔB ∖ ΔA⋈ΔB`` for equi and cross joins,
* :class:`DeltaAggregateOp` keeps per-group accumulators and re-aggregates
  only the groups a delta touches (O(1) maintenance for sum/count/avg,
  group-local refolds for min/max and friends),
* :class:`IncrementalView` owns the result multiset, the per-table synced
  versions it is keyed by, and the fallback ladder: version-identical →
  serve cached; delta available → maintain; anything else
  (:class:`DeltaUnavailable`, :class:`IncrementalError`) → full rebuild.

Which plans are lowered to this form — and which fall back to the batch or
row paths — is decided at plan time by
:class:`repro.engine.optimizer.incremental.IncrementalPlanner`.

Contract: the view maintains the result as a *multiset*; row order may
differ from a fresh full execution after churn (groups and rows keep their
first-seen positions).  Callers for whom order is observable must not
register their plans — :class:`~repro.runtime.world.GameWorld` only
registers effect queries whose combinators are order-insensitive.
Floating-point aggregates are maintained by running addition/subtraction
and may drift from a fresh fold by rounding error (compare with a
tolerance).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.aggregates import make_accumulator
from repro.engine.algebra import AggregateSpec
from repro.engine.batch import DeltaBatch
from repro.engine.errors import ExecutionError
from repro.engine.expressions import BatchCompileError, Expression, compile_batch
from repro.engine.operators.base import PhysicalOperator
from repro.engine.table import Table

__all__ = [
    "DeltaUnavailable",
    "IncrementalError",
    "IncrementalDisabled",
    "DeltaContext",
    "DeltaOperator",
    "DeltaScanOp",
    "DeltaValuesOp",
    "DeltaFilterOp",
    "DeltaProjectOp",
    "BandIndexProbe",
    "DeltaJoinOp",
    "DeltaAggregateOp",
    "DeltaUnionOp",
    "IncrementalView",
]


class DeltaUnavailable(ExecutionError):
    """A delta cannot be produced for this refresh (log truncated, bulk
    rewrite, unknown base version).  The view falls back to a full rebuild;
    the plan stays incremental for subsequent ticks."""


class IncrementalError(ExecutionError):
    """The maintained state disagrees with an incoming delta (should not
    happen; defensive).  The view discards its state and fully rebuilds."""


class IncrementalDisabled(ExecutionError):
    """The view gave up: churn exceeded the guard on several consecutive
    refreshes, so maintenance keeps costing more than plain re-execution.
    The executor drops the view and the query returns to the batch/row
    paths for good."""


class DeltaContext:
    """Per-refresh shared state: the synced versions and the netted base
    deltas, computed once per table no matter how many scans (self-joins!)
    reference it.  ``scan_deltas`` maps table name → a netted
    :class:`DeltaBatch` of row tuples in schema column order."""

    __slots__ = ("since", "scan_deltas")

    def __init__(self, since: Mapping[str, int], scan_deltas: Mapping[str, DeltaBatch]):
        self.since = since
        self.scan_deltas = scan_deltas


class _TupleColumn:
    """A column view over a list of value tuples: ``rows[k][pos]``.

    The delta operators compile their expressions *once* (at construction)
    with :func:`repro.engine.expressions.compile_batch` against these
    views, then re-bind ``rows`` to each delta side per refresh — the same
    compile-once/evaluate-per-index trick the batch path uses, instead of
    materializing a dict per delta row.
    """

    __slots__ = ("rows", "pos")

    def __init__(self, pos: int):
        self.rows: Sequence[tuple] = ()
        self.pos = pos

    def __getitem__(self, k: int) -> Any:
        return self.rows[k][self.pos]


class _RowsEvaluator:
    """Compile expressions over tuple rows with the given column names."""

    __slots__ = ("columns",)

    def __init__(self, names: Sequence[str]):
        self.columns = {name: _TupleColumn(pos) for pos, name in enumerate(names)}

    def compile(self, expr: Expression):
        """A per-index evaluator, or ``None`` if compilation is unsupported
        (callers then fall back to dict-based ``Expression.evaluate``)."""
        try:
            return compile_batch(expr, self.columns)
        except BatchCompileError:
            return None

    def bind(self, rows: Sequence[tuple]) -> None:
        for column in self.columns.values():
            column.rows = rows


class DeltaOperator:
    """Base class for incremental operators.

    Each node can do three things:

    * :meth:`delta` — the signed change of its output for the refresh
      described by a :class:`DeltaContext`, *updating any internal state*
      as a side effect (so it must be called exactly once per refresh),
    * :meth:`full_rows` — its complete current output as value tuples
      (stateless nodes execute their lowered ``full_plan``; scans read the
      version-cached columnar snapshot; aggregates serve their state),
    * :meth:`rebuild` — discard state and re-derive it from current data.

    ``names`` matches the row-dict keys the row/batch paths would produce,
    which is what makes results interchangeable across all three paths.
    """

    def __init__(
        self,
        names: Sequence[str],
        children: tuple["DeltaOperator", ...] = (),
        full_plan: PhysicalOperator | None = None,
    ):
        self.names = tuple(names)
        self.children = children
        self.full_plan = full_plan

    # -- interface ----------------------------------------------------------------

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        raise NotImplementedError

    def full_rows(self) -> list[tuple]:
        """Current full output as value tuples in ``names`` order."""
        if self.full_plan is None:
            raise ExecutionError(f"{type(self).__name__} has no full plan")
        names = self.names
        return [tuple(row[n] for n in names) for row in self.full_plan.rows()]

    def rebuild(self) -> None:
        for child in self.children:
            child.rebuild()

    # -- debugging ----------------------------------------------------------------

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        parts = [("  " * indent) + self.label()]
        for child in self.children:
            parts.append(child.explain(indent + 1))
        return "\n".join(parts)

    def walk(self) -> Iterator["DeltaOperator"]:
        yield self
        for child in self.children:
            yield from child.walk()


class DeltaScanOp(DeltaOperator):
    """Produce a base table's net row changes as a signed delta.

    ``names`` may be alias-qualified; tuples are always in the table's
    schema column order, so qualification is purely a naming concern.
    """

    def __init__(self, table: Table, names: Sequence[str]):
        super().__init__(names)
        self.table = table
        self._columns = table.schema.names

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        base_delta = ctx.scan_deltas.get(self.table.name)
        if base_delta is None:
            raise DeltaUnavailable(f"no base delta for table {self.table.name!r}")
        # Rename only: tuples are shared with the context's per-table delta.
        return DeltaBatch(
            self.names, base_delta.added, base_delta.removed, base_delta.netted
        )

    def full_rows(self) -> list[tuple]:
        batch = self.table.to_batch()
        if not self._columns:
            return []
        return list(zip(*(batch.column(c) for c in self._columns)))

    def label(self) -> str:
        return f"DeltaScan({self.table.name})"


class DeltaValuesOp(DeltaOperator):
    """A constant inline relation: its delta is always empty."""

    def __init__(self, names: Sequence[str], rows: Sequence[Mapping[str, Any]]):
        super().__init__(names)
        self._rows = [tuple(row.get(n) for n in self.names) for row in rows]

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        return DeltaBatch.empty(self.names)

    def full_rows(self) -> list[tuple]:
        return list(self._rows)

    def label(self) -> str:
        return f"DeltaValues({len(self._rows)} rows)"


class DeltaFilterOp(DeltaOperator):
    """Filter both sides of the child delta with a pure predicate.

    A row that satisfied the predicate before and after an update nets out
    upstream; one that crossed the predicate boundary survives on exactly
    one side — which is precisely the change of the filtered relation.
    """

    def __init__(
        self,
        child: DeltaOperator,
        predicate: Expression,
        full_plan: PhysicalOperator | None = None,
    ):
        super().__init__(child.names, (child,), full_plan)
        self.predicate = predicate
        self._evaluator = _RowsEvaluator(self.names)
        # One pass per AND-conjunct over the surviving indices, exactly like
        # BatchFilterOp: specialized comparisons where possible, generic
        # compiled closures otherwise, dict evaluation as the last resort.
        from repro.engine.expressions import BinaryOp
        from repro.engine.operators.batch_ops import _fast_comparison_pass

        conjuncts = (
            predicate.conjuncts() if isinstance(predicate, BinaryOp) else [predicate]
        )
        self._passes = []
        for conjunct in conjuncts:
            fast = _fast_comparison_pass(conjunct, self._evaluator.columns)
            if fast is not None:
                self._passes.append(fast)
                continue
            fn = self._evaluator.compile(conjunct)
            if fn is None:
                self._passes = None
                break
            self._passes.append(lambda sel, fn=fn: [k for k in sel if fn(k)])

    def _filter(self, rows: Sequence[tuple]) -> list[tuple]:
        if not rows:
            return []
        if self._passes is not None:
            self._evaluator.bind(rows)
            selection: Sequence[int] = range(len(rows))
            for conjunct_pass in self._passes:
                selection = conjunct_pass(selection)
                if not selection:
                    return []
            return [rows[k] for k in selection]
        predicate = self.predicate
        names = self.names
        return [
            values for values in rows if predicate.evaluate(dict(zip(names, values)))
        ]

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        child_delta = self.children[0].delta(ctx)
        if child_delta.is_empty():
            return DeltaBatch.empty(self.names)
        # Filtering disjoint sides keeps them disjoint: net-ness carries over.
        return DeltaBatch(
            self.names,
            self._filter(child_delta.added),
            self._filter(child_delta.removed),
            child_delta.netted,
        )

    def label(self) -> str:
        return f"DeltaFilter({self.predicate!r})"


class DeltaProjectOp(DeltaOperator):
    """Project both sides of the child delta through pure expressions."""

    def __init__(
        self,
        child: DeltaOperator,
        projections: Sequence[tuple[str, Expression]],
        full_plan: PhysicalOperator | None = None,
    ):
        super().__init__([name for name, _ in projections], (child,), full_plan)
        self.projections = list(projections)
        self._evaluator = _RowsEvaluator(child.names)
        fns = [self._evaluator.compile(expr) for _, expr in projections]
        self._compiled = fns if all(fn is not None for fn in fns) else None

    def _project(self, rows: Sequence[tuple]) -> list[tuple]:
        if not rows:
            return []
        if self._compiled is not None:
            self._evaluator.bind(rows)
            fns = self._compiled
            return [tuple(fn(k) for fn in fns) for k in range(len(rows))]
        child_names = self.children[0].names
        projections = self.projections
        out = []
        for values in rows:
            row = dict(zip(child_names, values))
            out.append(tuple(expr.evaluate(row) for _, expr in projections))
        return out

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        child_delta = self.children[0].delta(ctx)
        if child_delta.is_empty():
            return DeltaBatch.empty(self.names)
        return DeltaBatch(
            self.names,
            self._project(child_delta.added),
            self._project(child_delta.removed),
        ).net()

    def label(self) -> str:
        return f"DeltaProject({', '.join(name for name, _ in self.projections)})"


class BandIndexProbe:
    """Persistent-index probing for :class:`DeltaJoinOp`'s ``ΔA ⋈ Bnew`` term.

    A keyless band join's delta rule joins each left-delta row against the
    *entire* current right side — which :meth:`DeltaOperator.full_rows`
    materializes with a full table scan, exactly the per-tick O(table) cost
    the incremental path exists to avoid.  When the right side is a base
    table with a registered range-capable index over the probe columns,
    this spec probes that index per delta row instead: the unchanged side
    is never rescanned, and per-refresh work drops to O(|Δ| · candidates).

    The index is re-resolved on **every refresh** (:meth:`find_index`), so
    indexes the advisor creates or evicts after the view was registered are
    picked up without replanning.  Candidates may over-approximate (grid
    cells, uncovered dimensions); the caller filters them through the full
    join condition, so exactness never depends on the index.
    """

    def __init__(self, table: Table, dimensions: Sequence[tuple[str, Expression, Any]]):
        self.table = table
        #: ``(resolved right column, low expr, high expr)`` — exprs over left rows.
        self.dimensions = list(dimensions)
        #: Optional advisor hook ``(n_probes, width_sum, width_count)``.
        self.advisor_hook = None
        #: Delta rows joined through the index (introspection/tests).
        self.index_probes = 0

    def find_index(self):
        """The best registered range-capable index over the probe columns
        (:meth:`Table.find_index_covering`), re-resolved per refresh;
        ``None`` keeps the hash fallback."""
        covering = self.table.find_index_covering(
            [column for column, _, _ in self.dimensions]
        )
        return None if covering is None else covering[1]

    def bounds_of(self, left_row: Mapping[str, Any]) -> dict[str, tuple[float, float]] | None:
        """Per-column probe bounds for one left row, or ``None`` when a
        bound is null/inverted (the join condition cannot match then)."""
        out: dict[str, tuple[float, float]] = {}
        for column, low_expr, high_expr in self.dimensions:
            low = low_expr.evaluate(left_row)
            high = high_expr.evaluate(left_row)
            if low is None or high is None or high < low:
                return None
            out[column] = (float(low), float(high))
        return out

    def candidates(
        self, index, bounds: Mapping[str, tuple[float, float]], left_values: tuple
    ) -> list[tuple]:
        """Combined candidate rows for one probe (superset of the matches)."""
        table = self.table
        columns = table.schema.names
        search = [bounds[c] for c in index.columns]
        return [
            left_values + tuple(row[c] for c in columns)
            for row in map(table.get, index.range_search(search))
        ]


class DeltaJoinOp(DeltaOperator):
    """Incremental join via the bilinear delta rule.

    With ``Anew = Aold + ΔA`` and ``Bnew = Bold + ΔB`` over signed
    multisets::

        Δ(A ⋈ B) = ΔA ⋈ Bnew  +  Anew ⋈ ΔB  −  ΔA ⋈ ΔB

    Every term joins a (small) delta against either the other side's full
    current state or the other delta, so the work per refresh is
    O(|Δ| + |full side|) rather than O(|A|·|B| matches).  The full side of
    a term is only materialized when the opposite delta is non-empty — on a
    tick where only one input changed, the other side is never scanned.

    Without keys (``left_keys == []``) every row pair is a candidate and
    ``residual`` carries the whole join condition — this is how cross joins
    and the Figure-2 band-join shape are maintained; the per-refresh cost
    becomes O(|Δ| · |full side|), which the view's churn guard keeps below
    the cost of a full re-execution.  For the band-join shape specifically,
    a ``band_probe`` (:class:`BandIndexProbe`) built by the incremental
    planner lets the ``ΔA ⋈ Bnew`` terms probe a persistent index on the
    right base table instead of rescanning it — the unchanged side is then
    never materialized at all.

    ``how="left"`` additionally maintains the null-padded rows of a left
    outer join.  The outer part is *non*-monotonic — an insert on the right
    retracts a padded row — so the delta adds the padding correction::

        Δpad = Σ_{a ∈ Anew} ([m_new(a)=0] − [m_old(a)=0]) · pad(a)
             + Σ_{a ∈ ΔA} sign(a) · [m_old(a)=0] · pad(a)

    where ``m(a)`` counts a row's surviving matches (key equality plus
    residual, mirroring the row path's ``matched`` flag) and ``m_old`` is
    recovered as ``m_new − Δm`` from the right-side delta — no extra state.
    """

    def __init__(
        self,
        left: DeltaOperator,
        right: DeltaOperator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        residual: Expression | None,
        full_plan: PhysicalOperator | None = None,
        how: str = "inner",
        band_probe: "BandIndexProbe | None" = None,
    ):
        super().__init__(tuple(left.names) + tuple(right.names), (left, right), full_plan)
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.how = how
        self.band_probe = band_probe
        self._null_pad = (None,) * len(right.names)
        self._left_eval = _RowsEvaluator(left.names)
        self._right_eval = _RowsEvaluator(right.names)
        self._left_key_fns = self._compile_keys(self._left_eval, left_keys)
        self._right_key_fns = self._compile_keys(self._right_eval, right_keys)
        self._residual_eval = _RowsEvaluator(self.names)
        self._residual_fn = (
            None if residual is None else self._residual_eval.compile(residual)
        )

    @staticmethod
    def _compile_keys(evaluator: _RowsEvaluator, keys: Sequence[Expression]):
        fns = [evaluator.compile(k) for k in keys]
        return fns if all(fn is not None for fn in fns) else None

    # -- key / residual evaluation ---------------------------------------------------

    def _keys_of(
        self,
        evaluator: _RowsEvaluator,
        fns,
        names: tuple[str, ...],
        keys: Sequence[Expression],
        rows: Sequence[tuple],
    ) -> list[tuple | None]:
        """Evaluate the join key for each row; ``None`` marks a null key
        (never matches, mirroring the hash-join paths)."""
        if not keys:  # cross join: single shared bucket
            return [() for _ in rows]
        out: list[tuple | None] = []
        if fns is not None:
            evaluator.bind(rows)
            for k in range(len(rows)):
                key = tuple(fn(k) for fn in fns)
                out.append(None if any(v is None for v in key) else key)
            return out
        for values in rows:
            row = dict(zip(names, values))
            key = tuple(k.evaluate(row) for k in keys)
            out.append(None if any(v is None for v in key) else key)
        return out

    def _left_keys_of(self, rows: Sequence[tuple]) -> list[tuple | None]:
        return self._keys_of(
            self._left_eval, self._left_key_fns, self.children[0].names, self.left_keys, rows
        )

    def _right_keys_of(self, rows: Sequence[tuple]) -> list[tuple | None]:
        return self._keys_of(
            self._right_eval, self._right_key_fns, self.children[1].names, self.right_keys, rows
        )

    def _surviving(self, candidates: list[tuple]) -> list[tuple]:
        """Filter candidate combined rows through the residual predicate."""
        if self.residual is None or not candidates:
            return candidates
        if self._residual_fn is not None:
            self._residual_eval.bind(candidates)
            keep = self._residual_fn
            return [values for k, values in enumerate(candidates) if keep(k)]
        residual = self.residual
        names = self.names
        return [
            values for values in candidates if residual.evaluate(dict(zip(names, values)))
        ]

    def _probe(
        self,
        probe_rows: Sequence[tuple],
        probe_keys: Sequence[tuple | None],
        build: Mapping[tuple, list[tuple]],
        out: list[tuple],
    ) -> None:
        """Probe left-side rows against a hash of right-side rows.

        Candidates are filtered per probe row, so keyless (cross / band)
        probes never materialize more than one row's candidates at a time.
        """
        for values, key in zip(probe_rows, probe_keys):
            if key is None:
                continue
            bucket = build.get(key)
            if not bucket:
                continue
            out.extend(self._surviving([values + other for other in bucket]))

    @staticmethod
    def _hash(rows: Sequence[tuple], keys: Sequence[tuple | None]) -> dict[tuple, list[tuple]]:
        table: dict[tuple, list[tuple]] = {}
        for values, key in zip(rows, keys):
            if key is not None:
                table.setdefault(key, []).append(values)
        return table

    def _band_bounds(
        self, rows: Sequence[tuple]
    ) -> tuple[list[tuple[tuple, dict[str, tuple[float, float]]]], int, float, int]:
        """Evaluate band-probe bounds for delta rows.

        Returns the usable ``(values, bounds)`` pairs plus the probe/width
        statistics the advisor consumes — the one place those numbers are
        computed, whether the refresh ends up on the index or the hash
        fallback path.
        """
        probe = self.band_probe
        left_names = self.children[0].names
        pairs: list[tuple[tuple, dict[str, tuple[float, float]]]] = []
        n_probes = 0
        width_sum = 0.0
        width_count = 0
        for values in rows:
            bounds = probe.bounds_of(dict(zip(left_names, values)))
            if bounds is None:
                continue
            n_probes += 1
            for low, high in bounds.values():
                width_sum += high - low
                width_count += 1
            pairs.append((values, bounds))
        return pairs, n_probes, width_sum, width_count

    def _probe_band(self, index, rows: Sequence[tuple], out: list[tuple]) -> None:
        """Join delta rows against the right side via its persistent index.

        Candidates over-approximate (grid cells, uncovered dimensions);
        :meth:`_surviving` applies the full join condition, so the result
        is exactly what the hash path would have produced — without ever
        materializing the unchanged right side.
        """
        probe = self.band_probe
        pairs, n_probes, width_sum, width_count = self._band_bounds(rows)
        for values, bounds in pairs:
            candidates = probe.candidates(index, bounds, values)
            if candidates:
                out.extend(self._surviving(candidates))
        probe.index_probes += n_probes
        if probe.advisor_hook is not None:
            probe.advisor_hook(n_probes, width_sum, width_count)

    def _record_band_activity(self, dl: DeltaBatch) -> None:
        """Report hash-fallback band probes to the index advisor, so a
        band join that stays hot gets an index even when it is only ever
        maintained incrementally."""
        _, n_probes, width_sum, width_count = self._band_bounds(
            list(dl.added) + list(dl.removed)
        )
        self.band_probe.advisor_hook(n_probes, width_sum, width_count)

    def _count_matches(
        self, values: tuple, key: tuple | None, build: Mapping[tuple, list[tuple]]
    ) -> int:
        """How many build-side rows *values* matches (key plus residual)."""
        if key is None:
            return 0
        bucket = build.get(key)
        if not bucket:
            return 0
        if self.residual is None:
            return len(bucket)
        return len(self._surviving([values + other for other in bucket]))

    # -- delta ------------------------------------------------------------------------

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        left, right = self.children
        dl = left.delta(ctx)
        dr = right.delta(ctx)
        if dl.is_empty() and dr.is_empty():
            return DeltaBatch.empty(self.names)
        added: list[tuple] = []
        removed: list[tuple] = []
        lnames, rnames = left.names, right.names

        dl_add_keys = self._left_keys_of(dl.added)
        dl_rem_keys = self._left_keys_of(dl.removed)
        dr_add_keys = self._right_keys_of(dr.added)
        dr_rem_keys = self._right_keys_of(dr.removed)
        dr_add_hash = self._hash(dr.added, dr_add_keys)
        dr_rem_hash = self._hash(dr.removed, dr_rem_keys)

        band_index = None
        if (
            self.band_probe is not None
            and not self.left_keys
            and self.how == "inner"
            and not dl.is_empty()
        ):
            band_index = self.band_probe.find_index()

        b_hash: dict[tuple, list[tuple]] | None = None
        if band_index is None and (
            not dl.is_empty() or (self.how == "left" and not dr.is_empty())
        ):
            b_rows = right.full_rows()
            b_hash = self._hash(b_rows, self._right_keys_of(b_rows))
        a_rows: list[tuple] | None = None
        a_keys: list[tuple | None] | None = None
        if not dr.is_empty():
            a_rows = left.full_rows()
            a_keys = self._left_keys_of(a_rows)

        # ΔA ⋈ Bnew
        if not dl.is_empty():
            if band_index is not None:
                self._probe_band(band_index, dl.added, added)
                self._probe_band(band_index, dl.removed, removed)
            else:
                self._probe(dl.added, dl_add_keys, b_hash, added)
                self._probe(dl.removed, dl_rem_keys, b_hash, removed)
                if (
                    self.band_probe is not None
                    and self.band_probe.advisor_hook is not None
                    and not self.left_keys
                    and self.how == "inner"
                ):
                    self._record_band_activity(dl)
        # Anew ⋈ ΔB
        if not dr.is_empty():
            self._probe(a_rows, a_keys, dr_add_hash, added)
            self._probe(a_rows, a_keys, dr_rem_hash, removed)
        # − ΔA ⋈ ΔB (sign of each pair is the negated product of the sides')
        if not dl.is_empty() and not dr.is_empty():
            self._probe(dl.added, dl_add_keys, dr_add_hash, removed)
            self._probe(dl.added, dl_add_keys, dr_rem_hash, added)
            self._probe(dl.removed, dl_rem_keys, dr_add_hash, added)
            self._probe(dl.removed, dl_rem_keys, dr_rem_hash, removed)

        if self.how == "left":
            pad = self._null_pad

            def m_delta(values: tuple, key: tuple | None) -> int:
                return self._count_matches(values, key, dr_add_hash) - self._count_matches(
                    values, key, dr_rem_hash
                )

            if not dr.is_empty():
                # Padding term 1: current left rows whose surviving match
                # count crossed zero because of the right-side delta.
                for values, key in zip(a_rows, a_keys):
                    dm = m_delta(values, key)
                    if dm == 0:
                        continue
                    m_new = self._count_matches(values, key, b_hash)
                    m_old = m_new - dm
                    if m_old == 0 and m_new > 0:
                        removed.append(values + pad)
                    elif m_old > 0 and m_new == 0:
                        added.append(values + pad)
            # Padding term 2: delta left rows that were unmatched *before*
            # this refresh (together with term 1 this emits a pad exactly
            # for added rows with no current match, and retracts the pad of
            # removed rows that had none).
            for values, key in zip(dl.added, dl_add_keys):
                if self._count_matches(values, key, b_hash) - m_delta(values, key) == 0:
                    added.append(values + pad)
            for values, key in zip(dl.removed, dl_rem_keys):
                if self._count_matches(values, key, b_hash) - m_delta(values, key) == 0:
                    removed.append(values + pad)
        return DeltaBatch(self.names, added, removed).net()

    def label(self) -> str:
        if not self.left_keys:
            cond = "cross" if self.residual is None else f"on={self.residual!r}"
            return f"DeltaJoin({self.how}, {cond})"
        keys = ", ".join(
            f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        extra = "" if self.residual is None else f", residual={self.residual!r}"
        return f"DeltaJoin({self.how}, {keys}{extra})"


#: Aggregates maintained by running addition/subtraction — O(1) per delta row.
_FAST_AGGS = frozenset({"sum", "count", "avg"})

#: Aggregates the incremental path can maintain at all.  ``first``/``last``/
#: ``collect`` depend on input row order, which a maintained multiset does
#: not preserve — plans using them fall back at plan time.
MAINTAINABLE_AGGS = frozenset(
    {"sum", "count", "min", "max", "avg", "median", "any", "all", "union", "choose"}
)


class _GroupState:
    """Per-group maintenance state: the contributing argument-value
    multiset (for exact removal and refolds) plus running (sum, count)
    pairs for the fast aggregates."""

    __slots__ = ("rows", "size", "fast")

    def __init__(self, n_specs: int):
        self.rows: Counter = Counter()
        self.size = 0
        self.fast: list[list[Any]] = [[0, 0] for _ in range(n_specs)]


class DeltaAggregateOp(DeltaOperator):
    """Group-by maintenance with dirty-group re-aggregation.

    Sum/count/avg update in O(1) per delta row.  Order-insensitive but
    non-subtractable aggregates (min, max, median, any, all, union,
    choose) re-fold *only the groups the delta touched*, from the stored
    per-group value multiset — never from the base table.
    """

    def __init__(
        self,
        child: DeltaOperator,
        group_names: Sequence[str],
        group_indices: Sequence[int],
        aggregates: Sequence[AggregateSpec],
    ):
        names = list(group_names) + [spec.name for spec in aggregates]
        super().__init__(names, (child,))
        self.group_names = list(group_names)
        self.group_indices = list(group_indices)
        self.aggregates = list(aggregates)
        self._needs_row = any(spec.argument is not None for spec in self.aggregates)
        self._fast_specs = [
            i for i, spec in enumerate(self.aggregates) if spec.func in _FAST_AGGS
        ]
        self._groups: dict[tuple, _GroupState] = {}
        self._out: dict[tuple, tuple] = {}
        self._evaluator = _RowsEvaluator(child.names)
        fns = [
            None if spec.argument is None else self._evaluator.compile(spec.argument)
            for spec in self.aggregates
        ]
        compilable = all(
            fn is not None or spec.argument is None
            for fn, spec in zip(fns, self.aggregates)
        )
        self._compiled_args = fns if compilable else None
        # Bare column references (the common aggregate argument) read the
        # value straight out of the tuple, skipping even the compiled call.
        from repro.engine.expressions import ColumnRef, resolve_batch_column

        self._arg_positions: list[int | None] = []
        for spec in self.aggregates:
            position = None
            if isinstance(spec.argument, ColumnRef):
                resolved = resolve_batch_column(spec.argument.name, child.names)
                if resolved is not None:
                    position = child.names.index(resolved)
            self._arg_positions.append(position)

    # -- state maintenance -------------------------------------------------------------

    def _arg_values(self, child_names: tuple[str, ...], values: tuple) -> tuple:
        row = dict(zip(child_names, values)) if self._needs_row else None
        return tuple(
            1 if spec.argument is None else spec.argument.evaluate(row)
            for spec in self.aggregates
        )

    def _process_rows(
        self, rows: Sequence[tuple], sign: int, dirty: dict[tuple, tuple | None] | None
    ) -> None:
        """Fold one delta side (or, with ``dirty=None``, a full rebuild pass)
        into the group states."""
        if not rows:
            return
        indices = self.group_indices
        child_names = self.children[0].names
        compiled = self._compiled_args
        positions = self._arg_positions
        if compiled is not None:
            self._evaluator.bind(rows)
        for k, values in enumerate(rows):
            key = tuple(values[i] for i in indices)
            if dirty is not None and key not in dirty:
                dirty[key] = self._out.get(key)
            if compiled is not None:
                args = tuple(
                    values[pos]
                    if pos is not None
                    else (1 if fn is None else fn(k))
                    for pos, fn in zip(positions, compiled)
                )
            else:
                args = self._arg_values(child_names, values)
            self._apply(key, args, sign)

    def _apply(self, key: tuple, args: tuple, sign: int) -> None:
        group = self._groups.get(key)
        if group is None:
            if sign < 0:
                raise IncrementalError(f"removal from unknown group {key!r}")
            group = self._groups[key] = _GroupState(len(self.aggregates))
        rows = group.rows
        count = rows.get(args, 0) + sign
        if count < 0:
            raise IncrementalError(f"removal of untracked row {args!r} from group {key!r}")
        if count == 0:
            del rows[args]
        else:
            rows[args] = count
        group.size += sign
        for i in self._fast_specs:
            value = args[i]
            if value is not None:
                fast = group.fast[i]
                fast[0] += sign * value
                fast[1] += sign

    def _fold(self, key: tuple, group: _GroupState) -> tuple:
        out = list(key)
        for i, spec in enumerate(self.aggregates):
            func = spec.func
            if func in _FAST_AGGS:
                total, count = group.fast[i]
                if func == "count":
                    out.append(count)
                elif func == "sum":
                    out.append(total if count else 0)
                else:  # avg
                    out.append(total / count if count else None)
            else:
                acc = make_accumulator(func)
                for args, count in group.rows.items():
                    value = args[i]
                    for _ in range(count):
                        acc.add(value)
                out.append(acc.result())
        return tuple(out)

    # -- DeltaOperator interface ----------------------------------------------------------

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        child_delta = self.children[0].delta(ctx).net()
        if child_delta.is_empty():
            return DeltaBatch.empty(self.names)
        dirty: dict[tuple, tuple | None] = {}
        self._process_rows(child_delta.removed, -1, dirty)
        self._process_rows(child_delta.added, 1, dirty)
        added: list[tuple] = []
        removed: list[tuple] = []
        global_group = not self.group_names
        for key, old_out in dirty.items():
            group = self._groups.get(key)
            if group is not None and group.size == 0 and not global_group:
                del self._groups[key]
                group = None
            new_out = self._fold(key, group) if group is not None else None
            if new_out == old_out:
                continue
            if old_out is not None:
                removed.append(old_out)
            if new_out is not None:
                added.append(new_out)
                self._out[key] = new_out
            else:
                self._out.pop(key, None)
        # Each dirty group contributes at most one distinct old and one
        # distinct new output row, so the sides are disjoint by construction.
        return DeltaBatch(self.names, added, removed, netted=True)

    def rebuild(self) -> None:
        super().rebuild()
        self._groups.clear()
        self._out.clear()
        self._process_rows(self.children[0].full_rows(), 1, None)
        if not self.group_names and () not in self._groups:
            # Global aggregate over empty input still emits one identity row.
            self._groups[()] = _GroupState(len(self.aggregates))
        for key, group in self._groups.items():
            self._out[key] = self._fold(key, group)

    def full_rows(self) -> list[tuple]:
        return list(self._out.values())

    def label(self) -> str:
        aggs = ", ".join(spec.label() for spec in self.aggregates)
        return f"DeltaAggregate(by=[{', '.join(self.group_names)}], {aggs})"


class DeltaUnionOp(DeltaOperator):
    """Bag union: the delta of a union is the union of the deltas."""

    def __init__(
        self,
        left: DeltaOperator,
        right: DeltaOperator,
        full_plan: PhysicalOperator | None = None,
    ):
        super().__init__(left.names, (left, right), full_plan)

    def delta(self, ctx: DeltaContext) -> DeltaBatch:
        dl = self.children[0].delta(ctx)
        dr = self.children[1].delta(ctx)
        return DeltaBatch(
            self.names, dl.added + dr.added, dl.removed + dr.removed
        )

    def label(self) -> str:
        return "DeltaUnion"


class IncrementalView:
    """A materialized query result maintained from table deltas.

    The cache key is the referenced tables' version vector:

    * versions unchanged → serve the cached multiset (no scan at all),
    * all deltas available → propagate them through the operator tree and
      patch the multiset (work proportional to the churn),
    * otherwise → rebuild everything from a full execution.

    Results are handed out as fresh row dicts on every call, so callers may
    mutate them freely, exactly like the row and batch paths.

    A *churn guard* bounds the delta path: when the pending mutations exceed
    ``churn_threshold`` of the total referenced rows, maintenance can cost
    more than a (batch) re-execution — especially for the keyless join terms
    — so the view rebuilds instead.  A world where everything moves every
    tick therefore degrades gracefully to full execution, and after
    ``disable_after`` *consecutive* guard trips the view raises
    :class:`IncrementalDisabled` so the executor can drop it entirely and
    stop paying even the rebuild bookkeeping.
    """

    def __init__(
        self,
        root: DeltaOperator,
        tables: Mapping[str, Table],
        names: Sequence[str],
        churn_threshold: float = 0.3,
        disable_after: int = 3,
    ):
        self.root = root
        self.tables = dict(tables)
        self.names = tuple(names)
        self.churn_threshold = churn_threshold
        self.disable_after = disable_after
        self._synced: dict[str, int] | None = None
        self._counts: dict[tuple, int] = {}
        self._materialized: list[dict[str, Any]] | None = None
        self._consecutive_trips = 0
        self.full_refreshes = 0
        self.delta_refreshes = 0
        self.noop_hits = 0
        self.guard_trips = 0

    # -- refresh ------------------------------------------------------------------------

    def refresh(self) -> list[dict[str, Any]]:
        current = {name: table.version for name, table in self.tables.items()}
        if self._synced is None:
            self._full_refresh()
        elif current != self._synced:
            self._refresh_changed()
        else:
            self.noop_hits += 1
            self._consecutive_trips = 0
        self._synced = current
        return self._materialize()

    def _refresh_changed(self) -> None:
        ctx = self._prepare_context()
        if ctx is None:  # a change log cannot serve the synced version
            self._full_refresh()
            return
        net_churn = sum(len(delta) for delta in ctx.scan_deltas.values())
        if net_churn == 0:
            # Versions moved but every change netted out (e.g. no-op
            # updates): nothing to propagate at all.
            self.noop_hits += 1
            self._consecutive_trips = 0
            return
        total_rows = sum(len(table) for table in self.tables.values())
        if net_churn > max(64, self.churn_threshold * total_rows):
            self.guard_trips += 1
            self._consecutive_trips += 1
            if self._consecutive_trips >= self.disable_after:
                raise IncrementalDisabled(
                    f"churn exceeded {self.churn_threshold:.0%} of referenced rows "
                    f"{self._consecutive_trips} refreshes in a row"
                )
            self._full_refresh()
            return
        try:
            self._apply(self.root.delta(ctx).net())
            self.delta_refreshes += 1
            self._consecutive_trips = 0
        except (DeltaUnavailable, IncrementalError):
            self._full_refresh()

    def _prepare_context(self) -> DeltaContext | None:
        """Net each referenced table's changes once (shared by all scans)."""
        since = self._synced
        scan_deltas: dict[str, DeltaBatch] = {}
        for name, table in self.tables.items():
            columns = table.schema.names
            changes = table.changes_since(since.get(name, -1))
            if changes is None:
                return None
            added, removed = changes
            scan_deltas[name] = DeltaBatch(
                columns,
                [tuple(row[c] for c in columns) for row in added],
                [tuple(row[c] for c in columns) for row in removed],
            ).net()
        return DeltaContext(since, scan_deltas)

    def _full_refresh(self) -> None:
        self.root.rebuild()
        counts: dict[tuple, int] = {}
        for values in self.root.full_rows():
            counts[values] = counts.get(values, 0) + 1
        self._counts = counts
        self._materialized = None
        self.full_refreshes += 1

    def _apply(self, delta: DeltaBatch) -> None:
        counts = self._counts
        for values in delta.removed:
            count = counts.get(values, 0)
            if count <= 0:
                raise IncrementalError(f"removal of untracked result row {values!r}")
            if count == 1:
                del counts[values]
            else:
                counts[values] = count - 1
        for values in delta.added:
            counts[values] = counts.get(values, 0) + 1
        if not delta.is_empty():
            self._materialized = None

    def _materialize(self) -> list[dict[str, Any]]:
        """Serve the result as fresh dicts (callers may mutate them).

        The dict forms are cached until the multiset changes; serving a
        cached result costs one shallow copy per row.
        """
        if self._materialized is None:
            names = self.names
            rows: list[dict[str, Any]] = []
            for values, count in self._counts.items():
                row = dict(zip(names, values))
                for _ in range(count):
                    rows.append(row)
            self._materialized = rows
        return [dict(row) for row in self._materialized]

    # -- introspection ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "full_refreshes": self.full_refreshes,
            "delta_refreshes": self.delta_refreshes,
            "noop_hits": self.noop_hits,
            "guard_trips": self.guard_trips,
            "cached_rows": sum(self._counts.values()),
        }

    def explain(self) -> str:
        return self.root.explain()
