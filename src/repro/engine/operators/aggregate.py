"""Hash aggregation operator."""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.engine.aggregates import make_accumulator
from repro.engine.algebra import AggregateSpec
from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema

__all__ = ["HashAggregateOp"]


class HashAggregateOp(PhysicalOperator):
    """Group rows by key columns and fold aggregates incrementally.

    This operator implements both SQL-style GROUP BY and the effect
    combination of the state-effect pattern: group by the target object's
    key, combine every assigned effect value with the declared combinator.
    With an empty ``group_by`` the whole input forms a single group and one
    row is always produced (matching SQL's global-aggregate semantics).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        schema: Schema,
    ):
        super().__init__(schema, (child,))
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    def _produce(self) -> Iterator[dict[str, Any]]:
        child_schema = self.children[0].schema
        resolved_group = [child_schema.resolve(g) for g in self.group_by]
        groups: dict[tuple[Any, ...], list[Any]] = {}
        accumulators: dict[tuple[Any, ...], list[Any]] = {}
        group_rows: dict[tuple[Any, ...], dict[str, Any]] = {}
        for row in self.children[0]:
            key = tuple(row[g] for g in resolved_group)
            if key not in accumulators:
                accumulators[key] = [make_accumulator(spec.func) for spec in self.aggregates]
                group_rows[key] = {out: row[g] for out, g in zip(self.group_by, resolved_group)}
            accs = accumulators[key]
            for spec, acc in zip(self.aggregates, accs):
                if spec.argument is None:
                    acc.add(1)
                else:
                    acc.add(spec.argument.evaluate(row))
        if not accumulators and not self.group_by:
            # Global aggregate over empty input: emit identities.
            accumulators[()] = [make_accumulator(spec.func) for spec in self.aggregates]
            group_rows[()] = {}
        for key, accs in accumulators.items():
            out = dict(group_rows[key])
            for spec, acc in zip(self.aggregates, accs):
                out[spec.name] = acc.result()
            yield out

    def label(self) -> str:
        aggs = ", ".join(spec.label() for spec in self.aggregates)
        return f"HashAggregate(by=[{', '.join(self.group_by)}], {aggs})"
