"""Physical query operators: the row iterator model and the batch path."""

from repro.engine.operators.aggregate import HashAggregateOp
from repro.engine.operators.base import PhysicalOperator
from repro.engine.operators.batch_ops import (
    BatchAggregateOp,
    BatchBridgeOp,
    BatchFilterOp,
    BatchHashJoinOp,
    BatchNestedLoopJoinOp,
    BatchOperator,
    BatchProjectOp,
    BatchTableScanOp,
    BatchValuesOp,
)
from repro.engine.operators.exchange import ExchangeOp
from repro.engine.operators.filter import FilterOp, ProjectOp
from repro.engine.operators.fixpoint import (
    FixpointOp,
    LinearStep,
    RecursiveCell,
    RecursiveSourceOp,
)
from repro.engine.operators.incremental import (
    BandIndexProbe,
    DeltaAggregateOp,
    DeltaFilterOp,
    DeltaJoinOp,
    DeltaOperator,
    DeltaProjectOp,
    DeltaScanOp,
    DeltaUnionOp,
    DeltaUnavailable,
    DeltaValuesOp,
    IncrementalDisabled,
    IncrementalError,
    IncrementalView,
)
from repro.engine.operators.joins import (
    BandJoinOp,
    CrossJoinOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    IndexProbeJoinOp,
    NestedLoopJoinOp,
    RangeProbeJoinOp,
)
from repro.engine.operators.misc import DistinctOp, LimitOp, SortOp, UnionOp
from repro.engine.operators.shared import (
    BatchSharedSourceOp,
    EffectSinkOp,
    MaterializedSourceOp,
    fold_rows_to_partials,
)
from repro.engine.operators.scan import (
    IndexEqualityScanOp,
    IndexRangeScanOp,
    TableScanOp,
    ValuesOp,
)

__all__ = [
    "PhysicalOperator",
    "TableScanOp",
    "ValuesOp",
    "IndexEqualityScanOp",
    "IndexRangeScanOp",
    "FilterOp",
    "ProjectOp",
    "NestedLoopJoinOp",
    "HashJoinOp",
    "IndexNestedLoopJoinOp",
    "BandJoinOp",
    "RangeProbeJoinOp",
    "IndexProbeJoinOp",
    "CrossJoinOp",
    "ExchangeOp",
    "HashAggregateOp",
    "SortOp",
    "LimitOp",
    "DistinctOp",
    "UnionOp",
    "FixpointOp",
    "LinearStep",
    "RecursiveCell",
    "RecursiveSourceOp",
    "BatchOperator",
    "BatchTableScanOp",
    "BatchValuesOp",
    "BatchFilterOp",
    "BatchProjectOp",
    "BatchHashJoinOp",
    "BatchNestedLoopJoinOp",
    "BatchAggregateOp",
    "BatchBridgeOp",
    "MaterializedSourceOp",
    "BatchSharedSourceOp",
    "EffectSinkOp",
    "fold_rows_to_partials",
    "BandIndexProbe",
    "DeltaOperator",
    "DeltaScanOp",
    "DeltaValuesOp",
    "DeltaFilterOp",
    "DeltaProjectOp",
    "DeltaJoinOp",
    "DeltaAggregateOp",
    "DeltaUnionOp",
    "DeltaUnavailable",
    "IncrementalError",
    "IncrementalDisabled",
    "IncrementalView",
]
