"""Batch (columnar) physical operators.

These mirror the hot row-at-a-time operators — scan, filter, project, hash
and nested-loop join, aggregate — but produce whole
:class:`~repro.engine.batch.ColumnBatch` relations instead of yielding a
dict per row.  The physical planner
(:mod:`repro.engine.optimizer.physical`) lowers an operator subtree to
batch form only when every node is batch-capable and every expression is
provably compilable (:func:`repro.engine.expressions.batch_supported`), so
the row path remains the general fallback and both paths always produce
identical results (``tests/test_batch_columnar.py`` asserts this across
the workloads).

Output-ordering contract: every batch operator produces rows in exactly the
order its row-at-a-time twin would, so downstream order-sensitive
consumers (``first``/``last``/``collect`` aggregates, ``Limit``) cannot
tell the paths apart.

:class:`BatchBridgeOp` is the boundary: a regular
:class:`~repro.engine.operators.base.PhysicalOperator` that executes the
batch subtree and materializes row dicts once, at the top, so everything
above it (executor, plan cache, explain, parallel executor) is unchanged.
"""

from __future__ import annotations

import operator as _operator
import time
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.engine.aggregates import combine_values
from repro.engine.algebra import AggregateSpec
from repro.engine.batch import ColumnBatch, IndirectColumn
from repro.engine.errors import ExpressionError
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    compile_batch,
    resolve_batch_column,
)
from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema
from repro.engine.table import Table

__all__ = [
    "BatchOperator",
    "BatchTableScanOp",
    "BatchValuesOp",
    "BatchFilterOp",
    "BatchProjectOp",
    "BatchHashJoinOp",
    "BatchNestedLoopJoinOp",
    "BatchAggregateOp",
    "BatchBridgeOp",
]


class BatchOperator:
    """Base class for batch operators.

    ``names`` is the tuple of output column names — computed at plan time
    and identical to the keys of the row dicts the row-at-a-time twin
    would produce, which is what lets the planner resolve expressions
    statically before committing to the batch path.
    """

    def __init__(self, schema: Schema, names: Sequence[str], children: tuple["BatchOperator", ...] = ()):
        self.schema = schema
        self.names = tuple(names)
        self.children = children

    def execute(self) -> ColumnBatch:
        """Produce the full output relation as one batch."""
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        parts = [("  " * indent) + self.label()]
        for child in self.children:
            parts.append(child.explain(indent + 1))
        return "\n".join(parts)


class BatchTableScanOp(BatchOperator):
    """Expose a base table as a batch (shared, version-cached column lists)."""

    def __init__(self, table: Table, schema: Schema, alias: str | None = None):
        if alias:
            names = [f"{alias}.{n.split('.')[-1]}" for n in table.schema.names]
        else:
            names = list(table.schema.names)
        super().__init__(schema, names)
        self.table = table
        self.alias = alias

    def execute(self) -> ColumnBatch:
        batch = self.table.to_batch()
        if self.alias:
            return batch.qualify(self.alias)
        return batch

    def label(self) -> str:
        if self.alias and self.alias != self.table.name:
            return f"BatchTableScan({self.table.name} AS {self.alias})"
        return f"BatchTableScan({self.table.name})"


class BatchValuesOp(BatchOperator):
    """A fixed, in-plan list of rows in columnar form."""

    def __init__(self, schema: Schema, rows: Sequence[Mapping[str, Any]]):
        super().__init__(schema, schema.names)
        self._batch = ColumnBatch.from_rows(schema.names, rows)

    def execute(self) -> ColumnBatch:
        return self._batch

    def label(self) -> str:
        return f"BatchValues({len(self._batch)} rows)"


#: Mirror of the null-safe comparison semantics in ``expressions._BINARY_OPS``
#: for the specialized filter passes: equality is plain Python equality,
#: ordered comparisons drop rows with a ``None`` operand.
_ORDERED = {"<": _operator.lt, "<=": _operator.le, ">": _operator.gt, ">=": _operator.ge}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _fast_comparison_pass(
    conjunct: Expression, columns: Mapping[str, Sequence[Any]]
) -> Callable[[Sequence[int]], list[int]] | None:
    """Specialize ``col <op> literal`` / ``col <op> col`` conjuncts.

    Returns a selection-vector pass — one tight list comprehension with the
    comparison inlined — or ``None`` when the conjunct doesn't match, in
    which case the caller falls back to the generic compiled form.  This is
    where most of the batch filter's speedup over row-at-a-time evaluation
    comes from on the tick-loop predicates.
    """
    if not isinstance(conjunct, BinaryOp) or conjunct.op not in _FLIPPED:
        return None

    def column_of(expr: Expression) -> Sequence[Any] | None:
        if isinstance(expr, ColumnRef):
            resolved = resolve_batch_column(expr.name, tuple(columns))
            if resolved is not None:
                return columns[resolved]
        return None

    left_col = column_of(conjunct.left)
    right_col = column_of(conjunct.right)
    op = conjunct.op
    if left_col is not None and right_col is not None:
        if op == "==":
            return lambda sel, a=left_col, b=right_col: [i for i in sel if a[i] == b[i]]
        if op == "!=":
            return lambda sel, a=left_col, b=right_col: [i for i in sel if a[i] != b[i]]
        fn = _ORDERED[op]
        return lambda sel, a=left_col, b=right_col, fn=fn: [
            i
            for i in sel
            if (x := a[i]) is not None and (y := b[i]) is not None and fn(x, y)
        ]
    if left_col is not None and isinstance(conjunct.right, Literal):
        column, value = left_col, conjunct.right.value
    elif right_col is not None and isinstance(conjunct.left, Literal):
        column, value, op = right_col, conjunct.left.value, _FLIPPED[op]
    else:
        return None
    if op == "==":
        return lambda sel, c=column, v=value: [i for i in sel if c[i] == v]
    if op == "!=":
        return lambda sel, c=column, v=value: [i for i in sel if c[i] != v]
    if value is None:
        # Null-safe ordered comparison against NULL is never true.
        return lambda sel: []
    if op == ">":
        return lambda sel, c=column, v=value: [i for i in sel if (x := c[i]) is not None and x > v]
    if op == ">=":
        return lambda sel, c=column, v=value: [i for i in sel if (x := c[i]) is not None and x >= v]
    if op == "<":
        return lambda sel, c=column, v=value: [i for i in sel if (x := c[i]) is not None and x < v]
    return lambda sel, c=column, v=value: [i for i in sel if (x := c[i]) is not None and x <= v]


class BatchFilterOp(BatchOperator):
    """Shrink the selection vector to the indices satisfying the predicate.

    The predicate's AND-conjuncts are applied as successive passes over the
    selection vector — equivalent to the row path's short-circuit
    evaluation because later conjuncts only ever see rows that survived
    earlier ones.  Comparison conjuncts get specialized passes
    (:func:`_fast_comparison_pass`); anything else runs the generic
    compiled evaluator.
    """

    def __init__(self, child: BatchOperator, predicate: Expression):
        super().__init__(child.schema, child.names, (child,))
        self.predicate = predicate

    def execute(self) -> ColumnBatch:
        batch = self.children[0].execute()
        conjuncts = (
            self.predicate.conjuncts()
            if isinstance(self.predicate, BinaryOp)
            else [self.predicate]
        )
        selection: Sequence[int] = batch.indices()
        for conjunct in conjuncts:
            fast = _fast_comparison_pass(conjunct, batch.columns)
            if fast is not None:
                try:
                    selection = fast(selection)
                except TypeError as exc:
                    raise ExpressionError(f"cannot evaluate {conjunct!r} over batch") from exc
            else:
                keep = compile_batch(conjunct, batch.columns)
                selection = [i for i in selection if keep(i)]
        if not isinstance(selection, list):
            selection = list(selection)
        return batch.with_selection(selection)

    def label(self) -> str:
        return f"BatchFilter({self.predicate!r})"


class BatchProjectOp(BatchOperator):
    """Compute each output column as one list over the selection vector."""

    def __init__(
        self,
        child: BatchOperator,
        projections: Sequence[tuple[str, Expression]],
        schema: Schema,
    ):
        super().__init__(schema, [name for name, _ in projections], (child,))
        self.projections = list(projections)

    def execute(self) -> ColumnBatch:
        batch = self.children[0].execute()
        indices = batch.indices()
        columns: dict[str, list] = {}
        for name, expr in self.projections:
            fn = compile_batch(expr, batch.columns)
            columns[name] = [fn(i) for i in indices]
        return ColumnBatch(self.names, columns)

    def label(self) -> str:
        return f"BatchProject({', '.join(name for name, _ in self.projections)})"


def _gather_join_output(
    left: ColumnBatch,
    right: ColumnBatch,
    out_left: Sequence[int],
    out_right: Sequence[int | None],
    names: Sequence[str],
) -> ColumnBatch:
    """Materialize join output columns from (left index, right index) pairs.

    ``out_right`` entries of ``None`` are left-outer padding: every right
    column gets ``None`` for that output row, matching the row path's
    null-extended dicts.
    """
    columns: dict[str, list] = {}
    for name in left.names:
        col = left.columns[name]
        columns[name] = [col[i] for i in out_left]
    for name in right.names:
        col = right.columns[name]
        columns[name] = [None if j is None else col[j] for j in out_right]
    return ColumnBatch(names, columns)


class _PairFilter:
    """Evaluate a join predicate over candidate (left, right) index pairs.

    The predicate is compiled once against :class:`IndirectColumn` views of
    both inputs; the pair index lists are owned by the caller and can be
    refilled between :meth:`keep` calls (the nested-loop join reuses them
    per outer row to keep memory at O(|right|)).
    """

    def __init__(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        pair_left: list[int],
        pair_right: list[int],
        predicate: Expression,
    ):
        combined: dict[str, Any] = {}
        for name in left.names:
            combined[name] = IndirectColumn(left.columns[name], pair_left)
        for name in right.names:
            combined[name] = IndirectColumn(right.columns[name], pair_right)
        self._fn = compile_batch(predicate, combined)
        self._pair_left = pair_left

    def keep(self) -> list[int]:
        """Pair positions (into the current pair lists) that satisfy the predicate."""
        fn = self._fn
        return [k for k in range(len(self._pair_left)) if fn(k)]


class BatchHashJoinOp(BatchOperator):
    """Hash equi-join over batches: build right, probe left, gather output."""

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        schema: Schema,
        residual: Expression | None = None,
        how: str = "inner",
    ):
        super().__init__(schema, tuple(left.names) + tuple(right.names), (left, right))
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.how = how

    def execute(self) -> ColumnBatch:
        lb = self.children[0].execute()
        rb = self.children[1].execute()
        right_fns = [compile_batch(k, rb.columns) for k in self.right_keys]
        build: dict[tuple[Any, ...], list[int]] = {}
        for ri in rb.indices():
            key = tuple(fn(ri) for fn in right_fns)
            if any(k is None for k in key):
                continue
            build.setdefault(key, []).append(ri)
        left_fns = [compile_batch(k, lb.columns) for k in self.left_keys]

        # Fast path: an inner join with no residual emits the matched pairs
        # verbatim — no span bookkeeping, no re-scan.
        if self.how != "left" and self.residual is None:
            out_left: list[int] = []
            out_right: list[int | None] = []
            for li in lb.indices():
                key = tuple(fn(li) for fn in left_fns)
                if any(k is None for k in key):
                    continue
                matches = build.get(key)
                if matches:
                    out_left.extend([li] * len(matches))
                    out_right.extend(matches)
            return _gather_join_output(lb, rb, out_left, out_right, self.names)

        # Phase 1: candidate pairs, remembering each probe row's span so
        # left-outer padding can stay interleaved in probe order.
        pair_left: list[int] = []
        pair_right: list[int] = []
        probe_order: list[int] = []
        spans: list[tuple[int, int]] = []
        for li in lb.indices():
            start = len(pair_left)
            key = tuple(fn(li) for fn in left_fns)
            if not any(k is None for k in key):
                for ri in build.get(key, ()):
                    pair_left.append(li)
                    pair_right.append(ri)
            probe_order.append(li)
            spans.append((start, len(pair_left)))

        # Phase 2: residual predicate over the surviving pairs.
        if self.residual is not None and pair_left:
            keep = set(
                _PairFilter(lb, rb, pair_left, pair_right, self.residual).keep()
            )
        else:
            keep = None

        # Phase 3: emit pairs in probe order; pad unmatched probes for outer.
        out_left: list[int] = []
        out_right: list[int | None] = []
        pad = self.how == "left"
        for li, (start, end) in zip(probe_order, spans):
            matched = False
            for k in range(start, end):
                if keep is not None and k not in keep:
                    continue
                matched = True
                out_left.append(pair_left[k])
                out_right.append(pair_right[k])
            if pad and not matched:
                out_left.append(li)
                out_right.append(None)
        return _gather_join_output(lb, rb, out_left, out_right, self.names)

    def label(self) -> str:
        keys = ", ".join(f"{l!r}={r!r}" for l, r in zip(self.left_keys, self.right_keys))
        extra = "" if self.residual is None else f", residual={self.residual!r}"
        return f"BatchHashJoin({self.how}, {keys}{extra})"


class BatchNestedLoopJoinOp(BatchOperator):
    """Nested-loop / cross join over batches.

    Evaluates the condition block-wise — one outer row against the whole
    inner batch at a time — so the compiled predicate is reused while
    memory stays at O(|inner|) rather than O(|outer| × |inner|).
    """

    def __init__(
        self,
        left: BatchOperator,
        right: BatchOperator,
        condition: Expression | None,
        schema: Schema,
        how: str = "inner",
    ):
        super().__init__(schema, tuple(left.names) + tuple(right.names), (left, right))
        self.condition = condition
        self.how = how

    def execute(self) -> ColumnBatch:
        lb = self.children[0].execute()
        rb = self.children[1].execute()
        inner = list(rb.indices())
        n_inner = len(inner)
        pair_left: list[int] = []
        pair_right: list[int] = []
        pair_filter = (
            _PairFilter(lb, rb, pair_left, pair_right, self.condition)
            if self.condition is not None
            else None
        )
        out_left: list[int] = []
        out_right: list[int | None] = []
        pad = self.how == "left"
        for li in lb.indices():
            if pair_filter is None:
                # Condition-less (cross / unconditioned left) join: every
                # inner row matches; skip the pair machinery entirely.
                if n_inner:
                    out_left.extend([li] * n_inner)
                    out_right.extend(inner)
                elif pad:
                    out_left.append(li)
                    out_right.append(None)
                continue
            pair_left[:] = [li] * n_inner
            pair_right[:] = inner
            keep = pair_filter.keep()
            for k in keep:
                out_left.append(li)
                out_right.append(inner[k])
            if pad and not keep:
                out_left.append(li)
                out_right.append(None)
        return _gather_join_output(lb, rb, out_left, out_right, self.names)

    def label(self) -> str:
        return f"BatchNestedLoopJoin({self.how}, on={self.condition!r})"


def _fold_values(func: str, values: Sequence[Any]) -> Any:
    """Combine one group's values in a single pass.

    Semantics match :class:`repro.engine.aggregates.Accumulator` exactly —
    ``None`` values are skipped, each function's identity is returned for an
    all-null group — but the hot combinators avoid per-value method
    dispatch.  Exotic combinators fall back to
    :func:`repro.engine.aggregates.combine_values`.
    """
    if func == "count":
        return sum(1 for v in values if v is not None)
    if func == "sum":
        acc = None
        for v in values:
            if v is not None:
                acc = v if acc is None else acc + v
        return 0 if acc is None else acc
    if func == "min":
        present = [v for v in values if v is not None]
        return min(present) if present else None
    if func == "max":
        present = [v for v in values if v is not None]
        return max(present) if present else None
    if func == "avg":
        present = [v for v in values if v is not None]
        return sum(present) / len(present) if present else None
    if func == "any":
        return any(bool(v) for v in values if v is not None)
    if func == "all":
        return all(bool(v) for v in values if v is not None)
    return combine_values(func, values)


class BatchAggregateOp(BatchOperator):
    """Group-by and aggregation over a batch.

    ``group_names`` are the output column names (the group-by list exactly
    as written, matching the row path's dict keys); ``group_columns`` are
    the corresponding *batch* column names, resolved at plan time.
    """

    def __init__(
        self,
        child: BatchOperator,
        group_names: Sequence[str],
        group_columns: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        schema: Schema,
    ):
        names = list(group_names) + [spec.name for spec in aggregates]
        super().__init__(schema, names, (child,))
        self.group_names = list(group_names)
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)

    def execute(self) -> ColumnBatch:
        batch = self.children[0].execute()
        group_cols = [batch.columns[name] for name in self.group_columns]
        indices = batch.indices()

        # Phase 1: bucket row indices per group key (first-seen order, like
        # the row path's dict of accumulators).
        groups: dict[Any, list[int]] = {}
        if len(group_cols) == 1:
            col0 = group_cols[0]
            setdefault = groups.setdefault
            for i in indices:
                setdefault(col0[i], []).append(i)

            def key_values(key: Any) -> tuple[Any, ...]:
                return (key,)

        elif group_cols:
            setdefault = groups.setdefault
            for i in indices:
                setdefault(tuple(col[i] for col in group_cols), []).append(i)

            def key_values(key: Any) -> tuple[Any, ...]:
                return key

        else:
            # Global aggregate: one group, present even over empty input so
            # the identity row is emitted (SQL semantics, as on the row path).
            groups[()] = list(indices)

            def key_values(key: Any) -> tuple[Any, ...]:
                return ()

        # Phase 2: fold each aggregate over whole groups — no per-row
        # accumulator dispatch.
        arg_fns = [
            None if spec.argument is None else compile_batch(spec.argument, batch.columns)
            for spec in self.aggregates
        ]
        columns: dict[str, list] = {name: [] for name in self.names}
        for key, group_indices in groups.items():
            for name, value in zip(self.group_names, key_values(key)):
                columns[name].append(value)
            for spec, fn in zip(self.aggregates, arg_fns):
                if fn is None:
                    # No argument: the row path feeds the constant 1.
                    if spec.func == "count":
                        result = len(group_indices)
                    else:
                        result = _fold_values(spec.func, [1] * len(group_indices))
                else:
                    result = _fold_values(spec.func, [fn(i) for i in group_indices])
                columns[spec.name].append(result)
        return ColumnBatch(self.names, columns)

    def label(self) -> str:
        aggs = ", ".join(spec.label() for spec in self.aggregates)
        return f"BatchAggregate(by=[{', '.join(self.group_names)}], {aggs})"


class BatchBridgeOp(PhysicalOperator):
    """The batch → row boundary.

    A regular :class:`PhysicalOperator` whose subtree runs in batch form;
    row dicts are materialized exactly once, here, so the executor, plan
    cache and ``explain`` machinery above stay unchanged.
    """

    def __init__(self, batch_root: BatchOperator, schema: Schema):
        super().__init__(schema)
        self.batch_root = batch_root

    def _produce(self) -> Iterator[dict[str, Any]]:
        yield from self.batch_root.execute().to_rows()

    def rows(self) -> list[dict[str, Any]]:
        """Materialize in one step (avoids per-row generator resumption)."""
        self.executions += 1
        start = time.perf_counter()
        try:
            out = self.batch_root.execute().to_rows()
            self.rows_produced += len(out)
            return out
        finally:
            self.elapsed += time.perf_counter() - start

    def label(self) -> str:
        return "BatchBridge"

    def explain(self, indent: int = 0, analyze: bool = False) -> str:
        line = ("  " * indent) + self.label()
        if analyze:
            line += f"  [rows={self.rows_produced} execs={self.executions} time={self.elapsed:.4f}s]"
        return line + "\n" + self.batch_root.explain(indent + 1)
