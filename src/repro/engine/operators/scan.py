"""Scan operators: full table scans, inline values and index scans.

Row-ownership contract: every operator in this module is a *source* — it
reads the table's stored row dicts (shared references, via
:meth:`Table.rows` / :meth:`Table.get`) and emits a **fresh copy** of each
row (``_qualify_row`` always copies).  Downstream operators may therefore
mutate or adopt the dicts they receive without corrupting the table.
Pass-through operators (filter, sort, limit, distinct, union) preserve that
ownership; projection, join and aggregation build new dicts of their own.
The batch path gives the same guarantee once, in bulk: values are copied
into column lists by :meth:`Table.to_batch` and rows materialized fresh at
the :class:`~repro.engine.operators.batch_ops.BatchBridgeOp` boundary.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.engine.operators.base import PhysicalOperator
from repro.engine.schema import Schema
from repro.engine.table import Table

__all__ = ["TableScanOp", "ValuesOp", "IndexEqualityScanOp", "IndexRangeScanOp"]


def _qualify_row(row: Mapping[str, Any], alias: str | None) -> dict[str, Any]:
    """Copy *row*, prefixing keys with ``alias.`` if requested.

    The copy is not optional: *row* is a shared reference into the table's
    row store, and the returned dict is handed downstream as consumer-owned.
    """
    if not alias:
        return dict(row)
    return {f"{alias}.{k.split('.')[-1]}": v for k, v in row.items()}


class TableScanOp(PhysicalOperator):
    """Sequentially scan all rows of a base table."""

    def __init__(self, table: Table, schema: Schema, alias: str | None = None):
        super().__init__(schema)
        self.table = table
        self.alias = alias

    def _produce(self) -> Iterator[dict[str, Any]]:
        for row in self.table.rows():
            yield _qualify_row(row, self.alias)

    def label(self) -> str:
        if self.alias and self.alias != self.table.name:
            return f"TableScan({self.table.name} AS {self.alias})"
        return f"TableScan({self.table.name})"


class ValuesOp(PhysicalOperator):
    """Produce a fixed, in-plan list of rows."""

    def __init__(self, schema: Schema, rows: Sequence[Mapping[str, Any]]):
        super().__init__(schema)
        self._rows = [dict(r) for r in rows]

    def _produce(self) -> Iterator[dict[str, Any]]:
        for row in self._rows:
            yield dict(row)

    def label(self) -> str:
        return f"Values({len(self._rows)} rows)"


class IndexEqualityScanOp(PhysicalOperator):
    """Fetch rows whose indexed column(s) equal a constant key."""

    def __init__(self, table: Table, schema: Schema, index_name: str, key: Any, alias: str | None = None):
        super().__init__(schema)
        self.table = table
        self.index_name = index_name
        self.key = key
        self.alias = alias

    def _produce(self) -> Iterator[dict[str, Any]]:
        index = self.table.index(self.index_name)
        for rowid in index.lookup(self.key):
            yield _qualify_row(self.table.get(rowid), self.alias)

    def label(self) -> str:
        return f"IndexEqualityScan({self.table.name}.{self.index_name} = {self.key!r})"


class IndexRangeScanOp(PhysicalOperator):
    """Fetch rows whose indexed column(s) fall inside per-dimension bounds.

    ``bounds`` is a sequence of ``(low, high)`` pairs, one per index column;
    ``None`` means unbounded on that side.
    """

    def __init__(
        self,
        table: Table,
        schema: Schema,
        index_name: str,
        bounds: Sequence[tuple[Any, Any]],
        alias: str | None = None,
    ):
        super().__init__(schema)
        self.table = table
        self.index_name = index_name
        self.bounds = list(bounds)
        self.alias = alias

    def _produce(self) -> Iterator[dict[str, Any]]:
        index = self.table.index(self.index_name)
        for rowid in index.range_search(self.bounds):
            yield _qualify_row(self.table.get(rowid), self.alias)

    def label(self) -> str:
        return f"IndexRangeScan({self.table.name}.{self.index_name} {self.bounds})"
