"""Semi-naive fixpoint iteration (recursive plans).

Physical execution of :class:`~repro.engine.algebra.Fixpoint`: the closure
of a base relation under a recursive step, the plan shape behind
reachability, influence maps and contagion spread.  Three evaluation modes
share one operator:

* **semi-naive** (the default): each round binds the step's
  :class:`~repro.engine.algebra.RecursiveRef` to the *previous round's
  delta* only, so per-round work is proportional to the frontier — the
  same delta discipline as the PR-2 incremental operators, applied to
  recursion instead of churn.
* **naive** (``semi_naive=False``, the ``reference`` preset): each round
  binds the full accumulated relation.  Semantically identical, used as
  the parity oracle and the benchmark baseline.
* **incremental re-closure**: when only *insertions* hit the step's base
  tables since the last execution (detected through the PR-2
  ``Table.changes_since`` change log), the cached closure warm-restarts —
  per-table delta variants of the step derive the new frontier from just
  the inserted rows, then normal semi-naive rounds propagate it.  Any
  deletion, log truncation or base-relation change falls back to a full
  run; closure under deletion is not monotonic.

The common linear-recursion shape (the accumulator equi-joined with a
non-recursive subplan, e.g. ``closure ⋈ edges``) is specialized by
:class:`LinearStep`: the non-recursive side is hashed **once per
execution** and every round just probes it with the frontier, instead of
re-executing the whole step subtree.  The non-recursive side is lowered
through the ordinary planner, so batch kernels and MQO shared scans apply
to the step body like to any other plan.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.engine.errors import ExecutionError
from repro.engine.expressions import Expression
from repro.engine.operators.base import PhysicalOperator
from repro.engine.operators.incremental import DeltaBatch
from repro.engine.schema import Schema
from repro.engine.table import Table

__all__ = ["RecursiveCell", "RecursiveSourceOp", "LinearStep", "FixpointOp"]

#: Safety cap for uncapped fixpoints: a step that is still producing new
#: rows after this many rounds is recursing over an unbounded domain
#: (e.g. an un-deduplicated counter column) — fail loudly instead of
#: spinning forever.
SAFETY_ROUNDS = 10_000


class RecursiveCell:
    """The binding slot a :class:`RecursiveSourceOp` reads from.

    The enclosing :class:`FixpointOp` re-points ``rows`` every round
    (semi-naive: the delta; naive: the accumulator) or, for per-table
    delta variants, to the inserted base rows.
    """

    __slots__ = ("name", "rows")

    def __init__(self, name: str):
        self.name = name
        self.rows: Sequence[Mapping[str, Any]] = ()


class RecursiveSourceOp(PhysicalOperator):
    """Leaf operator serving the current contents of a :class:`RecursiveCell`.

    ``source_names`` re-labels cell rows positionally into this operator's
    schema — needed when a delta variant replaces an aliased ``TableScan``
    (cell rows carry raw table column names, the scan's schema qualified
    ones).
    """

    def __init__(
        self,
        schema: Schema,
        cell: RecursiveCell,
        source_names: Sequence[str] | None = None,
    ):
        super().__init__(schema)
        self.cell = cell
        if source_names is not None and tuple(source_names) == tuple(schema.names):
            source_names = None
        self.source_names = tuple(source_names) if source_names is not None else None

    def _produce(self) -> Iterator[dict[str, Any]]:
        if self.source_names is None:
            for row in self.cell.rows:
                yield dict(row)
        else:
            out_names = self.schema.names
            for row in self.cell.rows:
                yield {out: row[src] for out, src in zip(out_names, self.source_names)}

    def label(self) -> str:
        return f"RecursiveSource({self.cell.name})"


class LinearStep:
    """Specialized step for linear recursion: ``rec ⋈ build`` on equi keys.

    ``build_op`` (the non-recursive join side plus any pushed-down
    filters/projections, lowered through the normal planner) is hashed
    once per :meth:`prepare`; :meth:`apply` probes it with frontier rows.
    ``rec_filters`` are conjuncts pushed onto the recursive side,
    ``residual`` the non-equi join conjuncts over the combined row, and
    ``projections`` the step's output columns.

    ``build_delta`` — ``(table, cell, op)``, lowered when the build side
    derives from one table scanned once — lets :meth:`refresh` keep the
    hash current under insert-only churn by pushing just the inserted
    rows through the build expressions, instead of re-hashing the whole
    side on every warm restart.
    """

    def __init__(
        self,
        build_op: PhysicalOperator,
        rec_keys: Sequence[Expression],
        build_keys: Sequence[Expression],
        projections: Sequence[tuple[str, Expression]],
        rec_filters: Sequence[Expression] = (),
        residual: Sequence[Expression] = (),
        rec_side_left: bool = True,
        build_delta: tuple[Table, RecursiveCell, PhysicalOperator] | None = None,
    ):
        self.build_op = build_op
        self.rec_keys = tuple(rec_keys)
        self.build_keys = tuple(build_keys)
        self.projections = tuple(projections)
        self.rec_filters = tuple(rec_filters)
        self.residual = tuple(residual)
        self.rec_side_left = rec_side_left
        self.build_delta = build_delta
        self._hash: dict[tuple, list[Mapping[str, Any]]] | None = None
        #: Version of the build table the hash reflects (delta tracking).
        self._hash_version: int | None = None
        #: Hash refreshes served incrementally (observability for tests).
        self.incremental_refreshes = 0

    def enable_incremental(self) -> None:
        """Turn on change logging for the build table so :meth:`refresh`
        can ask it for the rows inserted since the last hash build."""
        if self.build_delta is not None:
            self.build_delta[0].enable_change_log()

    def prepare(self) -> None:
        table: dict[tuple, list[Mapping[str, Any]]] = defaultdict(list)
        keys = self.build_keys
        for row in self.build_op.rows():
            table[tuple(k.evaluate(row) for k in keys)].append(row)
        self._hash = dict(table)
        if self.build_delta is not None:
            self._hash_version = self.build_delta[0].version

    def refresh(self) -> None:
        """Bring the hash up to date; incremental under insert-only churn."""
        if self._hash is None or self.build_delta is None or self._hash_version is None:
            self.prepare()
            return
        table, cell, op = self.build_delta
        if table.version == self._hash_version:
            return
        changes = table.changes_since(self._hash_version)
        if changes is None or changes[1]:
            self.prepare()  # log unavailable, or deletions: full rebuild
            return
        added = changes[0]
        if added:
            keys = self.build_keys
            cell.rows = added
            try:
                for row in op.rows():
                    self._hash.setdefault(
                        tuple(k.evaluate(row) for k in keys), []
                    ).append(row)
            finally:
                cell.rows = ()
        self._hash_version = table.version
        self.incremental_refreshes += 1

    def apply(self, frontier: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        if self._hash is None:
            self.prepare()
        assert self._hash is not None
        out: list[dict[str, Any]] = []
        for rec_row in frontier:
            if self.rec_filters and not all(
                bool(f.evaluate(rec_row)) for f in self.rec_filters
            ):
                continue
            key = tuple(k.evaluate(rec_row) for k in self.rec_keys)
            matches = self._hash.get(key)
            if not matches:
                continue
            for build_row in matches:
                if self.rec_side_left:
                    combined = dict(rec_row)
                    combined.update(build_row)
                else:
                    combined = dict(build_row)
                    combined.update(rec_row)
                if self.residual and not all(
                    bool(r.evaluate(combined)) for r in self.residual
                ):
                    continue
                out.append(
                    {name: expr.evaluate(combined) for name, expr in self.projections}
                )
        return out


class _DeltaVariant:
    """One per-table delta variant of the step for incremental re-closure."""

    __slots__ = ("table", "cell", "op")

    def __init__(self, table: Table, cell: RecursiveCell, op: PhysicalOperator):
        self.table = table
        self.cell = cell
        self.op = op


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class FixpointOp(PhysicalOperator):
    """Iterate a step plan to a least fixpoint over a base relation.

    Results are cached per execution keyed by the version vector of every
    referenced base table (re-serving a closure on an unchanged world is
    free, matching the batch-cache discipline of table scans).  Counters
    expose the per-round frontier sizes so tests — and
    ``TickInspector.tick_counters()`` — can verify that semi-naive rounds
    touch only the delta.
    """

    def __init__(
        self,
        schema: Schema,
        base_op: PhysicalOperator,
        accum_cell: RecursiveCell,
        step_op: PhysicalOperator | None = None,
        linear_step: LinearStep | None = None,
        *,
        semi_naive: bool = True,
        max_rounds: int | None = None,
        distinct_on: Sequence[str] = (),
        base_tables: Sequence[Table] = (),
        step_tables: Sequence[Table] = (),
        delta_variants: Sequence[_DeltaVariant] = (),
        warm_restart: bool = True,
    ):
        if step_op is None and linear_step is None:
            raise ExecutionError("fixpoint needs a step operator or a linear step")
        children: list[PhysicalOperator] = [base_op]
        if step_op is not None:
            children.append(step_op)
        if linear_step is not None:
            children.append(linear_step.build_op)
        children.extend(v.op for v in delta_variants)
        super().__init__(schema, tuple(children))
        self.base_op = base_op
        self.step_op = step_op
        self.linear_step = linear_step
        self.accum_cell = accum_cell
        self.semi_naive = semi_naive
        self.max_rounds = max_rounds
        self.distinct_on = tuple(distinct_on)
        self.base_tables = tuple(base_tables)
        self.step_tables = tuple(step_tables)
        self.delta_variants = tuple(delta_variants)
        #: Allow warm restarts from the cached closure after insert-only
        #: churn (disabled under the reference preset and by benchmarks
        #: measuring the from-scratch baseline).
        self.warm_restart = warm_restart
        if self.warm_restart and self.semi_naive:
            for variant in self.delta_variants:
                variant.table.enable_change_log()
            if self.linear_step is not None:
                self.linear_step.enable_incremental()

        #: Cached closure: (version vector, rows, accumulator dict).
        self._cache: tuple[tuple[int, ...], list[dict[str, Any]], dict] | None = None

        # -- introspection counters (per last execution / cumulative) --------
        self.last_mode = "none"  #: "full" | "warm" | "cached"
        self.last_rounds = 0
        self.last_round_sizes: list[int] = []
        self.last_delta_rows = 0
        self.total_rounds = 0
        self.total_delta_rows = 0
        self.warm_restarts = 0
        self.cache_hits = 0

    # -- helpers -----------------------------------------------------------------

    def _key_of(self, row: Mapping[str, Any]) -> tuple:
        names = self.distinct_on or self.schema.names
        return tuple(_hashable(row[n]) for n in names)

    def _versions(self) -> tuple[int, ...]:
        return tuple(t.version for t in self.base_tables) + tuple(
            t.version for t in self.step_tables
        )

    def _run_step(self, frontier: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        if self.linear_step is not None:
            return self.linear_step.apply(frontier)
        assert self.step_op is not None
        self.accum_cell.rows = frontier
        try:
            return self.step_op.rows()
        finally:
            self.accum_cell.rows = ()

    def _iterate(
        self,
        acc: dict[tuple, dict[str, Any]],
        delta: list[dict[str, Any]],
        rounds_done: int,
    ) -> int:
        """Semi-naive/naive rounds until convergence; returns round count."""
        cap = self.max_rounds if self.max_rounds is not None else SAFETY_ROUNDS
        rounds = rounds_done
        while delta and rounds < cap:
            frontier = delta if self.semi_naive else list(acc.values())
            self.last_round_sizes.append(len(frontier))
            produced = self._run_step(frontier)
            delta = []
            for row in produced:
                key = self._key_of(row)
                if key not in acc:
                    acc[key] = row
                    delta.append(row)
            self.last_delta_rows += len(delta)
            rounds += 1
        if delta and self.max_rounds is None:
            raise ExecutionError(
                f"fixpoint did not converge within {SAFETY_ROUNDS} rounds; "
                "the step likely derives an unbounded column (use max_rounds "
                "or distinct_on)"
            )
        return rounds

    def _try_warm_restart(
        self, versions: tuple[int, ...]
    ) -> list[dict[str, Any]] | None:
        """Re-close from the cached accumulator after insert-only churn."""
        if (
            self._cache is None
            or not self.warm_restart
            or not self.semi_naive
            or self.distinct_on  # first-derivation-wins is not restartable
            or not self.delta_variants
        ):
            return None
        cached_versions, _, acc = self._cache
        n_base = len(self.base_tables)
        if versions[:n_base] != cached_versions[:n_base]:
            return None  # the seed relation changed: full recompute
        variant_tables = {id(v.table) for v in self.delta_variants}
        for table, old, new in zip(
            self.step_tables, cached_versions[n_base:], versions[n_base:]
        ):
            if old != new and id(table) not in variant_tables:
                return None  # changed table has no delta variant
        churn: list[tuple[_DeltaVariant, DeltaBatch]] = []
        for variant in self.delta_variants:
            table = variant.table
            old = cached_versions[n_base + self.step_tables.index(table)]
            changes = table.changes_since(old)
            if changes is None:
                return None  # log truncated/reset: full recompute
            added, removed = changes
            if removed:
                return None  # deletions are non-monotonic: full recompute
            if added:
                churn.append(
                    (variant, DeltaBatch(table.schema.names, added, [], netted=True))
                )
        if self.linear_step is not None:
            # Propagation must probe the post-churn build side: a path may
            # cross several new edges, not just the seeding one.  refresh()
            # appends only the inserted rows to the hash when it can.
            self.linear_step.refresh()
        acc = dict(acc)  # re-closure must not corrupt the cached closure
        seed: list[dict[str, Any]] = []
        self.accum_cell.rows = list(acc.values())
        try:
            for variant, batch in churn:
                variant.cell.rows = batch.added
                try:
                    for row in variant.op.rows():
                        key = self._key_of(row)
                        if key not in acc:
                            acc[key] = row
                            seed.append(row)
                finally:
                    variant.cell.rows = ()
        finally:
            self.accum_cell.rows = ()
        self.last_round_sizes.append(sum(len(b.added) for _, b in churn))
        self.last_delta_rows += len(seed)
        rounds = self._iterate(acc, seed, rounds_done=1)
        self.last_mode = "warm"
        self.last_rounds = rounds
        self.warm_restarts += 1
        rows = list(acc.values())
        self._cache = (versions, rows, acc)
        return rows

    # -- execution ---------------------------------------------------------------

    def _produce(self) -> Iterator[dict[str, Any]]:
        self.last_round_sizes = []
        self.last_delta_rows = 0
        versions = self._versions()
        if self._cache is not None and self.semi_naive and self._cache[0] == versions:
            self.last_mode = "cached"
            self.last_rounds = 0
            self.cache_hits += 1
            yield from self._cache[1]
            return

        rows = self._try_warm_restart(versions)
        if rows is None:
            if self.linear_step is not None:
                self.linear_step.refresh()
            acc: dict[tuple, dict[str, Any]] = {}
            delta: list[dict[str, Any]] = []
            for row in self.base_op.rows():
                key = self._key_of(row)
                if key not in acc:
                    acc[key] = row
                    delta.append(row)
            self.last_delta_rows += len(delta)
            rounds = self._iterate(acc, delta, rounds_done=0)
            self.last_mode = "full"
            self.last_rounds = rounds
            rows = list(acc.values())
            if self.semi_naive:
                self._cache = (versions, rows, acc)
        else:
            # Warm restart rebuilt the closure; the linear hash, if any,
            # was refreshed lazily inside the propagation rounds.
            pass
        self.total_rounds += self.last_rounds
        self.total_delta_rows += self.last_delta_rows
        yield from rows

    def invalidate(self) -> None:
        """Drop the cached closure (plan-cache invalidation hook)."""
        self._cache = None
        if self.linear_step is not None:
            self.linear_step._hash = None
            self.linear_step._hash_version = None

    def reset_counters(self) -> None:
        super().reset_counters()
        self.last_mode = "none"
        self.last_rounds = 0
        self.last_round_sizes = []
        self.last_delta_rows = 0
        self.total_rounds = 0
        self.total_delta_rows = 0
        self.warm_restarts = 0
        self.cache_hits = 0

    def label(self) -> str:
        mode = "semi-naive" if self.semi_naive else "naive"
        step = "linear" if self.linear_step is not None else "generic"
        cap = "∞" if self.max_rounds is None else str(self.max_rounds)
        return f"Fixpoint({mode}, {step} step, max_rounds={cap})"
