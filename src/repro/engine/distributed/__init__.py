"""Shared-nothing cluster simulation: partitioning, network model,
distributed execution and distributed range indexes (Section 4.2)."""

from repro.engine.distributed.cluster import Cluster, ClusterNode, DistributedTickResult
from repro.engine.distributed.dist_index import DistributedRangeIndex
from repro.engine.distributed.network import NetworkModel, NetworkStats
from repro.engine.distributed.partitioner import HashPartitioner, SpatialPartitioner

__all__ = [
    "Cluster",
    "ClusterNode",
    "DistributedTickResult",
    "DistributedRangeIndex",
    "NetworkModel",
    "NetworkStats",
    "HashPartitioner",
    "SpatialPartitioner",
]
