"""Data partitioning strategies for the shared-nothing cluster.

Two strategies cover the workloads in the paper:

* :class:`HashPartitioner` — partition game objects by hashing their key;
  good for load balance, but spatial queries must be broadcast.
* :class:`SpatialPartitioner` — partition the world into equal-width strips
  along one axis; spatial range queries only touch the strips overlapping
  the query box (plus a ghost margin), which is what makes partitioning the
  big orthogonal range-tree indices across nodes effective (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

__all__ = ["HashPartitioner", "SpatialPartitioner"]


@dataclass(frozen=True)
class HashPartitioner:
    """Assigns rows to partitions by hashing a key column."""

    key_column: str
    n_partitions: int

    def partition_of(self, row: Mapping[str, Any]) -> int:
        return hash(row[self.key_column]) % self.n_partitions

    def partitions_for_range(self, bounds: Sequence[tuple[Any, Any]]) -> list[int]:
        """Hash partitioning cannot prune range queries: all partitions."""
        return list(range(self.n_partitions))


@dataclass(frozen=True)
class SpatialPartitioner:
    """Splits one spatial axis into ``n_partitions`` equal-width strips."""

    axis_column: str
    n_partitions: int
    world_min: float = 0.0
    world_max: float = 1000.0

    @property
    def strip_width(self) -> float:
        return (self.world_max - self.world_min) / self.n_partitions

    def partition_of(self, row: Mapping[str, Any]) -> int:
        value = float(row[self.axis_column])
        return self.partition_for_value(value)

    def partition_for_value(self, value: float) -> int:
        width = self.strip_width
        if width <= 0:
            return 0
        index = int((value - self.world_min) // width)
        return max(0, min(self.n_partitions - 1, index))

    def partitions_for_range(self, bounds: Sequence[tuple[Any, Any]]) -> list[int]:
        """Partitions overlapping the query's bound on the partitioned axis.

        ``bounds`` follows the index convention (one ``(low, high)`` pair per
        dimension); only the first pair — the partitioned axis — is used.
        """
        low, high = bounds[0]
        low_p = 0 if low is None else self.partition_for_value(float(low))
        high_p = self.n_partitions - 1 if high is None else self.partition_for_value(float(high))
        return list(range(min(low_p, high_p), max(low_p, high_p) + 1))
