"""Shared-nothing cluster simulation (Section 4.2).

A :class:`Cluster` owns *n* :class:`ClusterNode` instances, a partitioner
and a :class:`~repro.engine.distributed.network.NetworkModel`.  Rows of a
game-object table are partitioned across nodes; a distributed query (the
"units within range of me" effect query) runs as:

1. every node evaluates the query over its local objects, fetching
   *ghost* rows from neighbouring partitions when a probe's range crosses a
   partition boundary (charged to the network model),
2. per-node partial results are aggregated locally,
3. partials are gathered at a coordinator (also charged).

The simulated tick time reported for experiment E7 is
``max(per-node compute) + network time``, i.e. the critical path of a
bulk-synchronous tick, which captures the latency sensitivity the paper
highlights without needing physical machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.engine.distributed.network import NetworkModel
from repro.engine.distributed.partitioner import HashPartitioner, SpatialPartitioner
from repro.engine.errors import ExecutionError

__all__ = ["ClusterNode", "Cluster", "DistributedTickResult"]


@dataclass
class ClusterNode:
    """One shared-nothing node: its partition of the object rows."""

    node_id: int
    rows: list[dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class DistributedTickResult:
    """Outcome of one distributed query/effect evaluation."""

    results: list[dict[str, Any]]
    per_node_compute_seconds: list[float]
    network_seconds: float
    ghost_rows_shipped: int
    messages: int

    @property
    def simulated_tick_seconds(self) -> float:
        compute = max(self.per_node_compute_seconds) if self.per_node_compute_seconds else 0.0
        return compute + self.network_seconds

    @property
    def total_compute_seconds(self) -> float:
        return sum(self.per_node_compute_seconds)


class Cluster:
    """A simulated shared-nothing cluster over one partitioned object table."""

    def __init__(
        self,
        n_nodes: int,
        partitioner: HashPartitioner | SpatialPartitioner,
        network: NetworkModel | None = None,
    ):
        if n_nodes <= 0:
            raise ExecutionError("cluster needs at least one node")
        self.n_nodes = n_nodes
        self.partitioner = partitioner
        self.network = network or NetworkModel()
        self.nodes = [ClusterNode(i) for i in range(n_nodes)]

    # -- loading ------------------------------------------------------------------------

    def load(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Partition *rows* across the nodes (replacing current contents)."""
        for node in self.nodes:
            node.rows = []
        for row in rows:
            node_id = self.partitioner.partition_of(row)
            self.nodes[node_id].rows.append(dict(row))

    def node_sizes(self) -> list[int]:
        return [len(node) for node in self.nodes]

    # -- distributed spatial query ---------------------------------------------------------

    def run_range_query_tick(
        self,
        coord_columns: Sequence[str],
        radius_column: str | float,
        per_pair: Callable[[dict[str, Any], dict[str, Any]], dict[str, Any] | None],
        combine: Callable[[list[dict[str, Any]]], list[dict[str, Any]]] | None = None,
    ) -> DistributedTickResult:
        """Evaluate a self-range-join effect query across the cluster.

        For every object ``a`` (on its home node) and every object ``b``
        within ``radius`` of ``a`` (possibly on a neighbour node),
        ``per_pair(a, b)`` produces an effect row (or ``None``).  Ghost rows
        — objects within the radius of a partition boundary — are shipped to
        the neighbouring node and charged to the network model.  ``combine``
        optionally reduces the gathered effect rows at the coordinator.
        """
        x_column = coord_columns[0]
        ghost_shipped = 0
        network_before = self.network.stats.simulated_seconds
        messages_before = self.network.stats.messages

        # Phase 1: exchange ghost rows between spatially adjacent partitions.
        ghosts_by_node: dict[int, list[dict[str, Any]]] = {i: [] for i in range(self.n_nodes)}
        if isinstance(self.partitioner, SpatialPartitioner):
            for node in self.nodes:
                for row in node.rows:
                    radius = (
                        float(row[radius_column])
                        if isinstance(radius_column, str)
                        else float(radius_column)
                    )
                    x = float(row[x_column])
                    low_p = self.partitioner.partition_for_value(x - radius)
                    high_p = self.partitioner.partition_for_value(x + radius)
                    for target in range(low_p, high_p + 1):
                        if target != node.node_id:
                            ghosts_by_node[target].append(row)
                            ghost_shipped += 1
            for target, ghosts in ghosts_by_node.items():
                if ghosts:
                    self.network.send_rows(ghosts)
        else:
            # Hash partitioning: every node needs every other node's rows.
            for node in self.nodes:
                for other in self.nodes:
                    if other.node_id != node.node_id:
                        ghosts_by_node[node.node_id].extend(other.rows)
                if self.n_nodes > 1:
                    self.network.send_rows(ghosts_by_node[node.node_id])
                    ghost_shipped += len(ghosts_by_node[node.node_id])

        # Phase 2: local evaluation on every node (timed individually).
        per_node_seconds: list[float] = []
        partials: list[list[dict[str, Any]]] = []
        for node in self.nodes:
            start = time.perf_counter()
            local_results: list[dict[str, Any]] = []
            candidates = node.rows + ghosts_by_node[node.node_id]
            for a in node.rows:
                radius = (
                    float(a[radius_column])
                    if isinstance(radius_column, str)
                    else float(radius_column)
                )
                ax = [float(a[c]) for c in coord_columns]
                for b in candidates:
                    bx = [float(b[c]) for c in coord_columns]
                    if all(abs(p - q) <= radius for p, q in zip(ax, bx)):
                        effect = per_pair(a, b)
                        if effect is not None:
                            local_results.append(effect)
            per_node_seconds.append(time.perf_counter() - start)
            partials.append(local_results)

        # Phase 3: gather partials at the coordinator.
        gathered: list[dict[str, Any]] = []
        for node_id, partial in enumerate(partials):
            if node_id != 0 and partial:
                self.network.send_rows(partial)
            gathered.extend(partial)
        if combine is not None:
            gathered = combine(gathered)

        network_seconds = self.network.stats.simulated_seconds - network_before
        messages = self.network.stats.messages - messages_before
        return DistributedTickResult(
            results=gathered,
            per_node_compute_seconds=per_node_seconds,
            network_seconds=network_seconds,
            ghost_rows_shipped=ghost_shipped,
            messages=messages,
        )
