"""Partitioning a multi-dimensional range-tree index across cluster nodes.

Section 4.2: a d-dimensional orthogonal range tree over n entries takes
Θ(n log^{d-1} n) space — "a tree with 100,000 entries of 16 bytes each
takes about 2 GB … thus an interesting research question is to consider
techniques to partition indices across multiple nodes."

:class:`DistributedRangeIndex` partitions the point set into spatial strips
(one per node) and builds an independent
:class:`~repro.engine.indexes.range_tree.RangeTreeIndex` per node.  Range
queries are routed only to the nodes whose strips overlap the query box;
the per-node memory footprint and routing fan-out are what experiment E7
reports.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.engine.distributed.network import NetworkModel
from repro.engine.distributed.partitioner import SpatialPartitioner
from repro.engine.indexes.range_tree import RangeTreeIndex

__all__ = ["DistributedRangeIndex"]


class DistributedRangeIndex:
    """A spatially partitioned orthogonal range tree."""

    def __init__(
        self,
        columns: Sequence[str],
        partitioner: SpatialPartitioner,
        network: NetworkModel | None = None,
    ):
        self.columns = tuple(columns)
        self.partitioner = partitioner
        self.network = network or NetworkModel()
        self._shards: list[RangeTreeIndex] = [
            RangeTreeIndex(columns) for _ in range(partitioner.n_partitions)
        ]
        self._shard_points: list[list[tuple[tuple[float, ...], Any]]] = [
            [] for _ in range(partitioner.n_partitions)
        ]

    # -- building ------------------------------------------------------------------------

    def build(self, points: Sequence[tuple[Sequence[float], Any]]) -> None:
        """Partition *points* by the first coordinate and build per-node trees."""
        self._shard_points = [[] for _ in range(self.partitioner.n_partitions)]
        for coords, payload in points:
            shard = self.partitioner.partition_for_value(float(coords[0]))
            self._shard_points[shard].append((tuple(float(c) for c in coords), payload))
        for shard, shard_points in enumerate(self._shard_points):
            self._shards[shard].build_from_points(shard_points)

    # -- queries --------------------------------------------------------------------------

    def range_search(self, bounds: Sequence[tuple[Any, Any]]) -> Iterator[Any]:
        """Query all shards overlapping *bounds*; charge one message per shard."""
        targets = self.partitioner.partitions_for_range(bounds)
        for shard in targets:
            results = list(self._shards[shard].range_search(bounds))
            self.network.send_rows(results if results else [{}])
            yield from results

    def shards_for_query(self, bounds: Sequence[tuple[Any, Any]]) -> list[int]:
        """Which shards a query touches (routing fan-out, no network charge)."""
        return self.partitioner.partitions_for_range(bounds)

    # -- accounting -----------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_sizes(self) -> list[int]:
        return [len(points) for points in self._shard_points]

    def shard_node_counts(self) -> list[int]:
        return [shard.node_count() for shard in self._shards]

    def shard_bytes(self, entry_size: int = 16) -> list[int]:
        """Estimated memory per node — the quantity that must fit in RAM."""
        return [shard.estimated_bytes(entry_size) for shard in self._shards]

    def total_bytes(self, entry_size: int = 16) -> int:
        return sum(self.shard_bytes(entry_size))

    def max_shard_bytes(self, entry_size: int = 16) -> int:
        sizes = self.shard_bytes(entry_size)
        return max(sizes) if sizes else 0
