"""A simple discrete network model for the shared-nothing cluster simulation.

The paper (Section 4.2) asks how SGL should run on a shared-nothing cluster
and observes that the interesting parameters are latency, update conflicts
and rollbacks, and that "different games are sensitive to these parameters
in different ways".  Real NICs are not available in this reproduction, so
the cluster simulation charges every message a configurable latency and a
per-byte transfer cost and keeps global counters; experiment E7 sweeps the
latency parameter and reports how the achievable tick rate degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["NetworkModel", "NetworkStats"]


@dataclass
class NetworkStats:
    """Counters accumulated by a :class:`NetworkModel`."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.simulated_seconds = 0.0


@dataclass
class NetworkModel:
    """Charges latency and bandwidth costs for messages between nodes.

    ``latency_s`` is the one-way message latency; ``bandwidth_bytes_per_s``
    of ``None`` means transfer time is ignored.  ``estimate_row_bytes``
    controls how a row dict is converted to a byte count.
    """

    latency_s: float = 0.0005
    bandwidth_bytes_per_s: float | None = 1e9
    estimate_row_bytes: int = 64
    stats: NetworkStats = field(default_factory=NetworkStats)

    def message_cost(self, payload_bytes: int) -> float:
        """Simulated seconds to deliver one message of *payload_bytes*."""
        cost = self.latency_s
        if self.bandwidth_bytes_per_s:
            cost += payload_bytes / self.bandwidth_bytes_per_s
        return cost

    def send(self, payload_bytes: int) -> float:
        """Record one message; return its simulated delivery time."""
        cost = self.message_cost(payload_bytes)
        self.stats.messages += 1
        self.stats.bytes_sent += payload_bytes
        self.stats.simulated_seconds += cost
        return cost

    def send_rows(self, rows: list[dict[str, Any]]) -> float:
        """Record shipping a batch of rows as a single message."""
        return self.send(max(1, len(rows)) * self.estimate_row_bytes)

    def broadcast(self, payload_bytes: int, n_receivers: int) -> float:
        """Record a broadcast; returns the time until the last receiver has it
        (messages go out in parallel, so latency is paid once)."""
        total_bytes = payload_bytes * n_receivers
        self.stats.messages += n_receivers
        self.stats.bytes_sent += total_bytes
        cost = self.message_cost(payload_bytes)
        self.stats.simulated_seconds += cost
        return cost

    def reset(self) -> None:
        self.stats.reset()
