"""Engine configuration: one frozen object instead of six boolean flags.

Before this module the engine's feature toggles (``use_batch``,
``use_incremental``, ``use_mqo``, ``use_indexes``, ``auto_index``) were
threaded as individual keyword arguments through :class:`GameWorld`, the
executor, the planner, and every ``build_*_world`` constructor — 63
occurrences across 8 files, each new flag multiplying the sprawl.
:class:`EngineConfig` consolidates them:

* construct one ``EngineConfig`` and pass it as ``config=`` anywhere the
  old booleans were accepted;
* the old keyword arguments keep working through
  :func:`resolve_engine_config`, which maps them onto the config object
  and emits a :class:`DeprecationWarning`;
* named presets (:meth:`EngineConfig.fastest`,
  :meth:`EngineConfig.reference`, :meth:`EngineConfig.debug`) capture the
  three configurations benchmarks and bug reports actually use, and
  ``REPRO_ENGINE_PRESET`` selects one from the environment so CI can run
  the whole suite under e.g. the fully compiled configuration.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

__all__ = ["EngineConfig", "resolve_engine_config"]

_PRESET_ENV_VAR = "REPRO_ENGINE_PRESET"


@dataclass(frozen=True)
class EngineConfig:
    """Immutable switchboard for every optional engine path.

    ``optimize``        run the logical rewrite/join-reorder passes.
    ``use_batch``       lower fusable plans onto the columnar batch operators.
    ``use_incremental`` maintain delta-incremental views for standing queries.
    ``use_mqo``         share common subplans across the tick's query set.
    ``use_indexes``     let the physical planner pick index scans/probes.
    ``auto_index``      run the index advisor (create/evict grid indexes).
    ``use_compiled``    compile fusable pipelines into per-plan Python
                        kernels (implies the batch layout; ignored when
                        ``use_batch`` is off).
    ``use_fixpoint``    evaluate recursive Fixpoint plans semi-naive (each
                        round joins only the previous round's delta);
                        ``False`` runs the naive reference loop over the
                        full accumulator.
    ``index_create_after`` / ``index_evict_after``
                        advisor tuning: hot streak before creating an
                        index, idle ticks before evicting one.
    """

    optimize: bool = True
    use_batch: bool = True
    use_incremental: bool = True
    use_mqo: bool = True
    use_indexes: bool = True
    auto_index: bool = True
    use_compiled: bool = False
    use_fixpoint: bool = True
    index_create_after: int = 3
    index_evict_after: int = 30

    # -- presets ---------------------------------------------------------------------------

    @classmethod
    def fastest(cls) -> "EngineConfig":
        """Every optimization on, including kernel compilation."""
        return cls(use_compiled=True)

    @classmethod
    def reference(cls) -> "EngineConfig":
        """Row-path-only semantics oracle: no batch, views, sharing or indexes."""
        return cls(
            use_batch=False,
            use_incremental=False,
            use_mqo=False,
            use_indexes=False,
            auto_index=False,
            use_compiled=False,
            use_fixpoint=False,
        )

    @classmethod
    def debug(cls) -> "EngineConfig":
        """Deterministic single-query plans: compilation, sharing and the
        self-tuning advisor off, so every query keeps its own inspectable
        operator tree."""
        return cls(use_mqo=False, auto_index=False, use_compiled=False)

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """The preset named by ``REPRO_ENGINE_PRESET`` (default config if unset)."""
        preset = os.environ.get(_PRESET_ENV_VAR, "").strip().lower()
        if preset in ("", "default"):
            return cls()
        if preset == "fastest":
            return cls.fastest()
        if preset == "reference":
            return cls.reference()
        if preset == "debug":
            return cls.debug()
        raise ValueError(
            f"unknown {_PRESET_ENV_VAR}={preset!r}; "
            "expected one of: default, fastest, reference, debug"
        )

    # -- derivation ------------------------------------------------------------------------

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with the given fields changed (frozen dataclasses can't mutate)."""
        return replace(self, **changes)

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for reports and benchmark metadata."""
        return asdict(self)


_LEGACY_FLAGS = frozenset(
    {
        "optimize",
        "use_batch",
        "use_incremental",
        "use_mqo",
        "use_indexes",
        "auto_index",
        "use_compiled",
        "use_fixpoint",
    }
)


def resolve_engine_config(
    config: EngineConfig | None,
    legacy: Mapping[str, Any] | None = None,
    *,
    stacklevel: int = 3,
) -> EngineConfig:
    """Resolve ``config=`` plus deprecated ``use_*`` keywords into one config.

    ``legacy`` maps old keyword names to the value the caller passed, with
    ``None`` meaning "not passed".  Any explicitly passed legacy flag is
    applied on top of the base config (the given ``config``, or the
    environment preset) and triggers a single :class:`DeprecationWarning`
    naming the offending keywords.
    """
    base = config if config is not None else EngineConfig.from_env()
    passed = {k: v for k, v in (legacy or {}).items() if v is not None}
    if not passed:
        return base
    unknown = set(passed) - _LEGACY_FLAGS
    if unknown:
        raise TypeError(f"unknown engine flags: {sorted(unknown)}")
    warnings.warn(
        "boolean engine flags ("
        + ", ".join(sorted(passed))
        + ") are deprecated; pass config=EngineConfig(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return base.replace(**{k: bool(v) for k, v in passed.items()})
