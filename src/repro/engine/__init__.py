"""Main-memory relational engine substrate.

This package is the "special games engine with features similar to a main
memory database system" the paper builds SGL on: typed schemas, tables with
index maintenance and tick snapshots, a logical relational algebra,
row-at-a-time and columnar (batch) physical operators, spatial and
relational indexes, statistics, a cost-based and adaptive optimizer, and
serial/parallel/distributed executors.
"""

from repro.engine.aggregates import AGGREGATE_NAMES, Accumulator, combine_values, make_accumulator
from repro.engine.batch import ColumnBatch, IndirectColumn
from repro.engine.algebra import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Select,
    Sort,
    SortKey,
    TableScan,
    Union,
    Values,
)
from repro.engine.catalog import Catalog
from repro.engine.config import EngineConfig, resolve_engine_config
from repro.engine.errors import (
    CatalogError,
    ConstraintViolation,
    EngineError,
    ExecutionError,
    ExpressionError,
    OptimizerError,
    PlanError,
    SchemaError,
    TypeMismatchError,
)
from repro.engine.executor import Executor, QueryResult
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Conditional,
    Expression,
    FunctionCall,
    Literal,
    SetLiteral,
    UnaryOp,
    Variable,
    and_all,
    col,
    lit,
    var,
)
from repro.engine.optimizer import AdaptiveQueryManager, ExecutionFeedback, IndexAdvisor, Planner
from repro.engine.parallel import ParallelResult, PartitionedExecutor
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.engine.types import DataType, Ref

__all__ = [
    "AGGREGATE_NAMES",
    "Accumulator",
    "combine_values",
    "make_accumulator",
    "ColumnBatch",
    "IndirectColumn",
    "Aggregate",
    "AggregateSpec",
    "Distinct",
    "Join",
    "Limit",
    "LogicalPlan",
    "Project",
    "Select",
    "Sort",
    "SortKey",
    "TableScan",
    "Union",
    "Values",
    "Catalog",
    "EngineConfig",
    "resolve_engine_config",
    "CatalogError",
    "ConstraintViolation",
    "EngineError",
    "ExecutionError",
    "ExpressionError",
    "OptimizerError",
    "PlanError",
    "SchemaError",
    "TypeMismatchError",
    "Executor",
    "QueryResult",
    "BinaryOp",
    "ColumnRef",
    "Conditional",
    "Expression",
    "FunctionCall",
    "Literal",
    "SetLiteral",
    "UnaryOp",
    "Variable",
    "and_all",
    "col",
    "lit",
    "var",
    "AdaptiveQueryManager",
    "ExecutionFeedback",
    "IndexAdvisor",
    "Planner",
    "ParallelResult",
    "PartitionedExecutor",
    "Column",
    "Schema",
    "Table",
    "DataType",
    "Ref",
]
