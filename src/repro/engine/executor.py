"""Query execution facade.

:class:`Executor` ties the catalog, planner and physical operators together
and adds the plan cache the tick loop relies on: the same logical query is
executed at every tick (Section 4.1), so plans are compiled once and reused
until the catalog shape changes or the caller invalidates them.

Results are always row dicts regardless of execution path: when the
planner chose the columnar batch path for a subtree, its
:class:`~repro.engine.operators.batch_ops.BatchBridgeOp` root materializes
the batch back into row dicts, so ``execute`` and ``QueryResult`` are
path-agnostic.  ``cache_report`` notes which cached plans run on the batch
path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.engine.algebra import LogicalPlan
from repro.engine.catalog import Catalog
from repro.engine.errors import ExecutionError
from repro.engine.operators import PhysicalOperator
from repro.engine.optimizer.planner import PlannedQuery, Planner

__all__ = ["Executor", "QueryResult"]


@dataclass
class QueryResult:
    """Materialized result rows plus execution metadata."""

    rows: list[dict[str, Any]]
    runtime: float
    planned: PlannedQuery

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        """Extract one column as a list (resolving unqualified names)."""
        out = []
        for row in self.rows:
            if name in row:
                out.append(row[name])
                continue
            matches = [k for k in row if k.split(".")[-1] == name]
            if len(matches) != 1:
                raise ExecutionError(f"cannot resolve column {name!r} in result")
            out.append(row[matches[0]])
        return out

    def scalar(self) -> Any:
        """Return the single value of a single-row, single-column result."""
        if len(self.rows) != 1:
            raise ExecutionError(f"expected exactly one row, got {len(self.rows)}")
        row = self.rows[0]
        if len(row) != 1:
            raise ExecutionError(f"expected exactly one column, got {list(row)}")
        return next(iter(row.values()))


@dataclass
class _CachedPlan:
    planned: PlannedQuery
    executions: int = 0
    total_runtime: float = 0.0


class Executor:
    """Plans and executes logical plans against a catalog, caching plans."""

    def __init__(
        self,
        catalog: Catalog,
        optimize: bool = True,
        use_indexes: bool = True,
        use_batch: bool = True,
    ):
        self.catalog = catalog
        self.planner = Planner(
            catalog, optimize=optimize, use_indexes=use_indexes, use_batch=use_batch
        )
        self._cache: dict[int, _CachedPlan] = {}

    # -- planning ---------------------------------------------------------------------

    def prepare(self, plan: LogicalPlan, cache: bool = True) -> PlannedQuery:
        """Plan a query, consulting / populating the plan cache."""
        key = id(plan)
        if cache and key in self._cache:
            return self._cache[key].planned
        planned = self.planner.plan(plan)
        if cache:
            self._cache[key] = _CachedPlan(planned)
        return planned

    def invalidate(self, plan: LogicalPlan | None = None) -> None:
        """Drop one cached plan or the whole cache."""
        if plan is None:
            self._cache.clear()
        else:
            self._cache.pop(id(plan), None)

    # -- execution ----------------------------------------------------------------------

    def execute(self, plan: LogicalPlan, cache: bool = True) -> QueryResult:
        """Plan (or reuse a cached plan for) and execute *plan*."""
        planned = self.prepare(plan, cache=cache)
        return self.execute_planned(planned, cache_key=id(plan) if cache else None)

    def execute_planned(
        self, planned: PlannedQuery, cache_key: int | None = None
    ) -> QueryResult:
        start = time.perf_counter()
        rows = planned.physical.rows()
        runtime = time.perf_counter() - start
        if cache_key is not None and cache_key in self._cache:
            entry = self._cache[cache_key]
            entry.executions += 1
            entry.total_runtime += runtime
        return QueryResult(rows=rows, runtime=runtime, planned=planned)

    def execute_physical(self, physical: PhysicalOperator) -> list[dict[str, Any]]:
        """Run an already-lowered operator tree (used by the parallel executor)."""
        return physical.rows()

    # -- reporting -----------------------------------------------------------------------

    def cache_report(self) -> list[dict[str, Any]]:
        """Execution counts and mean runtimes of cached plans."""
        report = []
        for entry in self._cache.values():
            mean = entry.total_runtime / entry.executions if entry.executions else 0.0
            report.append(
                {
                    "plan": entry.planned.optimized.node_label(),
                    "executions": entry.executions,
                    "mean_runtime": mean,
                    "estimated_cost": entry.planned.estimated.cost,
                    "batch": entry.planned.uses_batch,
                }
            )
        return report
