"""Query execution facade.

:class:`Executor` ties the catalog, planner and physical operators together
and adds the plan cache the tick loop relies on: the same logical query is
executed at every tick (Section 4.1), so plans are compiled once and reused
until the catalog shape changes or the caller invalidates them.

Results are always row dicts regardless of execution path: when the
planner chose the columnar batch path for a subtree, its
:class:`~repro.engine.operators.batch_ops.BatchBridgeOp` root materializes
the batch back into row dicts, so ``execute`` and ``QueryResult`` are
path-agnostic.  ``cache_report`` notes which cached plans run on the batch
path.

A third path exists for *registered* queries: :meth:`Executor.register_incremental`
lowers a plan to a delta-maintained materialized view
(:mod:`repro.engine.operators.incremental`) when the planner can prove it
correct, after which ``execute`` serves the view — cached rows when no
referenced table changed, delta maintenance when the change logs cover the
churn, full re-execution otherwise.  Registration is explicit because the
view maintains a row *multiset*: callers that can observe result row order
(or need exact float reproducibility) must stay on the full paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.engine.algebra import LogicalPlan
from repro.engine.catalog import Catalog
from repro.engine.errors import EngineError, ExecutionError
from repro.engine.operators import IncrementalView, PhysicalOperator
from repro.engine.optimizer.planner import PlannedQuery, Planner

__all__ = ["Executor", "QueryResult"]


@dataclass
class QueryResult:
    """Materialized result rows plus execution metadata."""

    rows: list[dict[str, Any]]
    runtime: float
    planned: PlannedQuery

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        """Extract one column as a list (resolving unqualified names)."""
        out = []
        for row in self.rows:
            if name in row:
                out.append(row[name])
                continue
            matches = [k for k in row if k.split(".")[-1] == name]
            if len(matches) != 1:
                raise ExecutionError(f"cannot resolve column {name!r} in result")
            out.append(row[matches[0]])
        return out

    def scalar(self) -> Any:
        """Return the single value of a single-row, single-column result."""
        if len(self.rows) != 1:
            raise ExecutionError(f"expected exactly one row, got {len(self.rows)}")
        row = self.rows[0]
        if len(row) != 1:
            raise ExecutionError(f"expected exactly one column, got {list(row)}")
        return next(iter(row.values()))


@dataclass
class _CachedPlan:
    planned: PlannedQuery
    executions: int = 0
    total_runtime: float = 0.0


class Executor:
    """Plans and executes logical plans against a catalog, caching plans."""

    def __init__(
        self,
        catalog: Catalog,
        optimize: bool = True,
        use_indexes: bool = True,
        use_batch: bool = True,
        use_incremental: bool = True,
        index_advisor=None,
    ):
        self.catalog = catalog
        self.index_advisor = index_advisor
        self.planner = Planner(
            catalog,
            optimize=optimize,
            use_indexes=use_indexes,
            use_batch=use_batch,
            index_advisor=index_advisor,
        )
        self.use_incremental = use_incremental
        self._cache: dict[int, _CachedPlan] = {}
        self._incremental: dict[int, IncrementalView] = {}

    # -- planning ---------------------------------------------------------------------

    def prepare(self, plan: LogicalPlan, cache: bool = True) -> PlannedQuery:
        """Plan a query, consulting / populating the plan cache."""
        key = id(plan)
        if cache and key in self._cache:
            return self._cache[key].planned
        planned = self.planner.plan(plan)
        if cache:
            self._cache[key] = _CachedPlan(planned)
        return planned

    def invalidate(self, plan: LogicalPlan | None = None) -> None:
        """Drop one cached plan (and its incremental view) or everything."""
        if plan is None:
            self._cache.clear()
            self._incremental.clear()
        else:
            self._cache.pop(id(plan), None)
            self._incremental.pop(id(plan), None)

    def invalidate_plans(self) -> None:
        """Drop cached physical plans, keeping incremental registrations.

        Used after the catalog *shape* changed — e.g. the index advisor
        created or evicted an index — so the next ``execute`` replans
        against the new shape.  Incremental views stay: they are keyed by
        table versions, not plans, and re-find indexes lazily per refresh.
        """
        self._cache.clear()

    # -- incremental registration ----------------------------------------------------

    def register_incremental(self, plan: LogicalPlan) -> bool:
        """Try to maintain *plan*'s result incrementally from table deltas.

        Returns ``True`` when the plan was lowered to a materialized view
        (subsequent :meth:`execute` calls serve and maintain it), ``False``
        when the planner declined — non-monotonic operators, order-dependent
        aggregates, band joins — or incremental execution is disabled; the
        query then simply stays on the batch/row paths.

        Only register queries whose consumers treat the result as a row
        multiset: the view does not reproduce full-execution row order
        after churn, and float aggregates are maintained by running
        addition/subtraction (exact for ints, ±rounding error for floats).
        """
        if not self.use_incremental:
            return False
        key = id(plan)
        if key in self._incremental:
            return True
        planned = self.prepare(plan)
        view = self.planner.build_incremental(planned.optimized)
        if view is None:
            return False
        self._incremental[key] = view
        return True

    def incremental_view(self, plan: LogicalPlan) -> IncrementalView | None:
        """The registered view for *plan*, if any (inspection/tests)."""
        return self._incremental.get(id(plan))

    # -- execution ----------------------------------------------------------------------

    def execute(self, plan: LogicalPlan, cache: bool = True) -> QueryResult:
        """Plan (or reuse a cached plan for) and execute *plan*."""
        planned = self.prepare(plan, cache=cache)
        view = self._incremental.get(id(plan))
        if view is not None:
            start = time.perf_counter()
            try:
                rows = view.refresh()
            except EngineError:
                # Defensive: a view that cannot even full-rebuild — including
                # catalog-shape casualties like a dropped index — is dropped
                # for good; the query falls through to the physical plan.
                self._incremental.pop(id(plan), None)
            else:
                runtime = time.perf_counter() - start
                if cache and id(plan) in self._cache:
                    entry = self._cache[id(plan)]
                    entry.executions += 1
                    entry.total_runtime += runtime
                return QueryResult(rows=rows, runtime=runtime, planned=planned)
        return self.execute_planned(planned, cache_key=id(plan) if cache else None)

    def execute_planned(
        self, planned: PlannedQuery, cache_key: int | None = None
    ) -> QueryResult:
        start = time.perf_counter()
        rows = planned.physical.rows()
        runtime = time.perf_counter() - start
        if cache_key is not None and cache_key in self._cache:
            entry = self._cache[cache_key]
            entry.executions += 1
            entry.total_runtime += runtime
        return QueryResult(rows=rows, runtime=runtime, planned=planned)

    def execute_physical(self, physical: PhysicalOperator) -> list[dict[str, Any]]:
        """Run an already-lowered operator tree (used by the parallel executor)."""
        return physical.rows()

    # -- reporting -----------------------------------------------------------------------

    def cache_report(self) -> list[dict[str, Any]]:
        """Execution counts and mean runtimes of cached plans."""
        report = []
        for key, entry in self._cache.items():
            mean = entry.total_runtime / entry.executions if entry.executions else 0.0
            report.append(
                {
                    "plan": entry.planned.optimized.node_label(),
                    "executions": entry.executions,
                    "mean_runtime": mean,
                    "estimated_cost": entry.planned.estimated.cost,
                    "batch": entry.planned.uses_batch,
                    "incremental": key in self._incremental,
                }
            )
        return report

    def incremental_report(self) -> list[dict[str, Any]]:
        """Refresh statistics for every registered incremental view."""
        report = []
        for key, view in self._incremental.items():
            entry = self._cache.get(key)
            stats = view.stats()
            stats["plan"] = (
                entry.planned.optimized.node_label() if entry is not None else "?"
            )
            report.append(stats)
        return report
