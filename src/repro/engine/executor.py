"""Query execution facade.

:class:`Executor` ties the catalog, planner and physical operators together
and adds the plan cache the tick loop relies on: the same logical query is
executed at every tick (Section 4.1), so plans are compiled once and reused
until the catalog shape changes or the caller invalidates them.

Results are always row dicts regardless of execution path: when the
planner chose the columnar batch path for a subtree, its
:class:`~repro.engine.operators.batch_ops.BatchBridgeOp` root materializes
the batch back into row dicts, so ``execute`` and ``QueryResult`` are
path-agnostic.  ``cache_report`` notes which cached plans run on the batch
path.

A third path exists for *registered* queries: :meth:`Executor.register_incremental`
lowers a plan to a delta-maintained materialized view
(:mod:`repro.engine.operators.incremental`) when the planner can prove it
correct, after which ``execute`` serves the view — cached rows when no
referenced table changed, delta maintenance when the change logs cover the
churn, full re-execution otherwise.  Registration is explicit because the
view maintains a row *multiset*: callers that can observe result row order
(or need exact float reproducibility) must stay on the full paths.

Finally, the tick loop's multi-query path: :meth:`prepare_tick` takes one
tick's worth of queries at once, runs tick-wide multi-query optimization
(:mod:`repro.engine.optimizer.mqo`) over their optimized logical plans, and
compiles a pipeline in which each shared subplan is evaluated at most once
per :meth:`execute_tick` call and served to every consumer from its
materialization — a :class:`~repro.engine.batch.ColumnBatch` when the
shared subplan lowered to the columnar path.  Queries that declare an
order-insensitive ⊕ combinator are additionally *sink-fused*
(:class:`~repro.engine.operators.shared.EffectSinkOp`): the pipeline
returns pre-combined per-target partials instead of one row per effect
assignment.  Shared materializations are tick-scoped — they are dropped at
every ``execute_tick`` boundary and by both invalidation entry points, so
a catalog change or mid-run replan can never serve stale shared state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.algebra import LogicalPlan
from repro.engine.batch import ColumnBatch
from repro.engine.catalog import Catalog
from repro.engine.errors import EngineError, ExecutionError
from repro.engine.operators import (
    BatchBridgeOp,
    BatchSharedSourceOp,
    EffectSinkOp,
    IncrementalView,
    MaterializedSourceOp,
    PhysicalOperator,
    fold_rows_to_partials,
)
from repro.engine.compile import KernelLowering
from repro.engine.config import EngineConfig, resolve_engine_config
from repro.engine.operators.batch_ops import BatchOperator
from repro.engine.operators.shared import EffectPartial
from repro.engine.optimizer.mqo import SharedScan, TickPlan, build_tick_plan
from repro.engine.optimizer.planner import PlannedQuery, Planner

__all__ = ["Executor", "QueryResult", "TickQuerySpec", "TickQueryResult"]


@dataclass
class QueryResult:
    """Materialized result rows plus execution metadata."""

    rows: list[dict[str, Any]]
    runtime: float
    planned: PlannedQuery

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        """Extract one column as a list (resolving unqualified names)."""
        out = []
        for row in self.rows:
            if name in row:
                out.append(row[name])
                continue
            matches = [k for k in row if k.split(".")[-1] == name]
            if len(matches) != 1:
                raise ExecutionError(f"cannot resolve column {name!r} in result")
            out.append(row[matches[0]])
        return out

    def scalar(self) -> Any:
        """Return the single value of a single-row, single-column result."""
        if len(self.rows) != 1:
            raise ExecutionError(f"expected exactly one row, got {len(self.rows)}")
        row = self.rows[0]
        if len(row) != 1:
            raise ExecutionError(f"expected exactly one column, got {list(row)}")
        return next(iter(row.values()))


@dataclass
class TickQuerySpec:
    """One query of a tick pipeline.

    ``combinator`` requests effect-sink fusion: when set (an
    order-insensitive ⊕ combinator name), :meth:`Executor.execute_tick`
    returns per-target partial accumulators instead of result rows.  The
    target/value column names default to the SGL compiler's conventions
    but are parameters so the engine stays ignorant of the SGL layer.
    """

    key: str
    plan: LogicalPlan
    combinator: str | None = None
    target_column: str = "__target__"
    value_column: str = "__value__"


@dataclass
class TickQueryResult:
    """Result of one pipeline query: rows *or* sink-fused partials."""

    key: str
    rows: list[dict[str, Any]] | None
    partials: list[EffectPartial] | None
    runtime: float
    planned: PlannedQuery


@dataclass
class _CachedPlan:
    planned: PlannedQuery
    executions: int = 0
    total_runtime: float = 0.0


class _SharedResult:
    """Tick-scoped materialization of one shared subplan."""

    __slots__ = ("rows", "batch", "seconds")

    def __init__(self) -> None:
        self.rows: list[dict[str, Any]] | None = None
        self.batch: ColumnBatch | None = None
        #: Wall seconds spent materializing (traced per MQO fingerprint).
        self.seconds = 0.0


@dataclass
class _SharedDefExec:
    """Lowered form of one shared subplan."""

    fingerprint: str
    physical: PhysicalOperator
    #: Set when the subplan lowered fully columnar: the materialization is
    #: kept as a batch and columnar consumers share its value lists.
    batch_root: BatchOperator | None
    #: Output column names of the materialization (representative aliases).
    names: tuple[str, ...]
    consumers: int


@dataclass
class _TickEntryExec:
    spec: TickQuerySpec
    planned: PlannedQuery
    physical: PhysicalOperator
    sink: EffectSinkOp | None
    shared_refs: tuple[str, ...]


@dataclass
class _TickPipeline:
    key: tuple
    entries: list[_TickEntryExec]
    shared: list[_SharedDefExec] = field(default_factory=list)
    shared_by_fp: dict[str, _SharedDefExec] = field(default_factory=dict)
    tick_plan: TickPlan | None = None


class _SharedLoweringContext:
    """Resolves :class:`SharedScan` leaves while a pipeline is lowered.

    Installed on the physical planner for the duration of
    :meth:`Executor.prepare_tick`; the produced source operators close
    over the executor's tick-scoped shared store, so materializations are
    looked up (and lazily computed) at execution time.
    """

    def __init__(self, executor: "Executor", defs: dict[str, _SharedDefExec]):
        self.executor = executor
        self.defs = defs

    def _column_renames(self, node: SharedScan, names: Sequence[str]) -> dict[str, str]:
        if not node.alias_renames:
            return {}
        out: dict[str, str] = {}
        for name in names:
            head, dot, tail = name.partition(".")
            if dot and head in node.alias_renames:
                out[name] = f"{node.alias_renames[head]}.{tail}"
        return out

    def row_source(self, node: SharedScan) -> MaterializedSourceOp | None:
        shared = self.defs.get(node.fingerprint)
        if shared is None:
            return None
        renames = self._column_renames(node, shared.names)
        executor = self.executor
        fingerprint = node.fingerprint

        def fetch() -> list[dict[str, Any]]:
            return executor._shared_rows(fingerprint, renames)

        return MaterializedSourceOp(
            node.output_schema(executor.catalog), fetch, fingerprint
        )

    def batch_source(self, node: SharedScan) -> BatchSharedSourceOp | None:
        shared = self.defs.get(node.fingerprint)
        if shared is None:
            return None
        renames = self._column_renames(node, shared.names)
        names = tuple(renames.get(n, n) for n in shared.names)
        executor = self.executor
        fingerprint = node.fingerprint

        def fetch() -> ColumnBatch:
            return executor._shared_batch(fingerprint, renames)

        return BatchSharedSourceOp(
            node.output_schema(executor.catalog), names, fetch, fingerprint
        )


class Executor:
    """Plans and executes logical plans against a catalog, caching plans."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig | None = None,
        *,
        optimize: bool | None = None,
        use_indexes: bool | None = None,
        use_batch: bool | None = None,
        use_incremental: bool | None = None,
        index_advisor=None,
    ):
        config = resolve_engine_config(
            config,
            {
                "optimize": optimize,
                "use_indexes": use_indexes,
                "use_batch": use_batch,
                "use_incremental": use_incremental,
            },
        )
        self.catalog = catalog
        self.config = config
        self.index_advisor = index_advisor
        self.planner = Planner(catalog, config, index_advisor=index_advisor)
        self.use_incremental = config.use_incremental
        #: Compiled kernel programs, keyed by MQO fingerprint + structural
        #: signature; owned here so catalog-shape invalidation drops them
        #: together with the cached plans that reference them.
        self._kernels: dict[Any, Any] = {}
        if config.use_compiled and config.use_batch:
            self._kernel_lowering = KernelLowering(self._kernels)
            self.planner.physical_planner.kernel_lowering = self._kernel_lowering
        else:
            self._kernel_lowering = None
        self._cache: dict[int, _CachedPlan] = {}
        #: ``id(plan) -> (plan, view)``.  The plan reference is load-bearing:
        #: it pins the id so a garbage-collected plan can never hand its id
        #: (and therefore this view) to an unrelated new plan.
        self._incremental: dict[int, tuple[LogicalPlan, IncrementalView]] = {}
        #: The compiled tick pipeline (shared-subplan DAG) and its
        #: tick-scoped materializations.
        self._tick_pipeline: _TickPipeline | None = None
        self._shared_results: dict[str, _SharedResult] = {}
        #: Plan-cache hit/miss counters (surfaced per tick via TickReport).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Sharing statistics of the most recent ``execute_tick`` call.
        self.last_tick_stats: dict[str, Any] = {}
        #: Materialization seconds per shared-subplan fingerprint for the
        #: most recent ``execute_tick`` call (consumed by the tick tracer).
        self.last_shared_timings: dict[str, float] = {}

    # -- planning ---------------------------------------------------------------------

    def prepare(self, plan: LogicalPlan, cache: bool = True) -> PlannedQuery:
        """Plan a query, consulting / populating the plan cache."""
        key = id(plan)
        if cache and key in self._cache:
            self.plan_cache_hits += 1
            return self._cache[key].planned
        self.plan_cache_misses += 1
        planned = self.planner.plan(plan)
        if cache:
            self._cache[key] = _CachedPlan(planned)
        return planned

    def invalidate(self, plan: LogicalPlan | None = None) -> None:
        """Drop one cached plan (and its incremental view) or everything."""
        if plan is None:
            self._cache.clear()
            self._incremental.clear()
            self._kernels.clear()
        else:
            self._cache.pop(id(plan), None)
            self._incremental.pop(id(plan), None)
        self._tick_pipeline = None
        self._shared_results.clear()

    def release_plan(self, plan: LogicalPlan) -> None:
        """Drop one plan's cache entry and incremental registration only.

        The narrow teardown for an external consumer (e.g. a subscription
        group) that owned the plan and went away: unlike
        :meth:`invalidate` it leaves the tick pipeline and shared
        materializations alone, so releasing an unrelated plan never
        forces the multi-query pipeline to recompile.
        """
        self._cache.pop(id(plan), None)
        self._incremental.pop(id(plan), None)

    def invalidate_plans(self) -> None:
        """Drop cached physical plans, keeping incremental registrations.

        Used after the catalog *shape* changed — e.g. the index advisor
        created or evicted an index — so the next ``execute`` replans
        against the new shape.  Incremental views stay: they are keyed by
        table versions, not plans, and re-find indexes lazily per refresh.
        The tick pipeline and its shared materializations are dropped too:
        both embed lowered physical plans.  Compiled kernels go with the
        plans: they bake in schema column order and index decisions, so a
        stale kernel would silently read the wrong columns.
        """
        self._cache.clear()
        self._kernels.clear()
        self._tick_pipeline = None
        self._shared_results.clear()

    def kernel_report(self) -> dict[str, int]:
        """Kernel-compilation counters (all zero when compilation is off)."""
        lowering = self._kernel_lowering
        if lowering is None:
            return {"compiled": 0, "hits": 0, "declined": 0, "cached": 0}
        return {
            "compiled": lowering.compiled,
            "hits": lowering.hits,
            "declined": lowering.declined,
            "cached": len(self._kernels),
        }

    # -- incremental registration ----------------------------------------------------

    def register_incremental(self, plan: LogicalPlan) -> bool:
        """Try to maintain *plan*'s result incrementally from table deltas.

        Returns ``True`` when the plan was lowered to a materialized view
        (subsequent :meth:`execute` calls serve the view), ``False``
        when the planner declined — non-monotonic operators, order-dependent
        aggregates, band joins — or incremental execution is disabled; the
        query then simply stays on the batch/row paths.

        Only register queries whose consumers treat the result as a row
        multiset: the view does not reproduce full-execution row order
        after churn, and float aggregates are maintained by running
        addition/subtraction (exact for ints, ±rounding error for floats).
        """
        if not self.use_incremental:
            return False
        key = id(plan)
        if key in self._incremental:
            return True
        planned = self.prepare(plan)
        view = self.planner.build_incremental(planned.optimized)
        if view is None:
            return False
        self._incremental[key] = (plan, view)
        return True

    def incremental_view(self, plan: LogicalPlan) -> IncrementalView | None:
        """The registered view for *plan*, if any (inspection/tests)."""
        record = self._incremental.get(id(plan))
        return record[1] if record is not None else None

    # -- execution ----------------------------------------------------------------------

    def execute(self, plan: LogicalPlan, cache: bool = True) -> QueryResult:
        """Plan (or reuse a cached plan for) and execute *plan*."""
        planned = self.prepare(plan, cache=cache)
        rows = self._refresh_incremental(plan)
        if rows is not None:
            view_rows, runtime = rows
            if cache and id(plan) in self._cache:
                entry = self._cache[id(plan)]
                entry.executions += 1
                entry.total_runtime += runtime
            return QueryResult(rows=view_rows, runtime=runtime, planned=planned)
        return self.execute_planned(planned, cache_key=id(plan) if cache else None)

    def _refresh_incremental(
        self, plan: LogicalPlan
    ) -> tuple[list[dict[str, Any]], float] | None:
        """Serve *plan* from its incremental view, or ``None`` to fall back.

        A view that cannot even full-rebuild — including catalog-shape
        casualties like a dropped index — is dropped for good; the query
        falls through to the physical plan.
        """
        record = self._incremental.get(id(plan))
        if record is None:
            return None
        view = record[1]
        start = time.perf_counter()
        try:
            rows = view.refresh()
        except EngineError:
            self._incremental.pop(id(plan), None)
            return None
        return rows, time.perf_counter() - start

    def execute_planned(
        self, planned: PlannedQuery, cache_key: int | None = None
    ) -> QueryResult:
        start = time.perf_counter()
        rows = planned.physical.rows()
        runtime = time.perf_counter() - start
        if cache_key is not None and cache_key in self._cache:
            entry = self._cache[cache_key]
            entry.executions += 1
            entry.total_runtime += runtime
        return QueryResult(rows=rows, runtime=runtime, planned=planned)

    def execute_physical(self, physical: PhysicalOperator) -> list[dict[str, Any]]:
        """Run an already-lowered operator tree (used by the parallel executor)."""
        return physical.rows()

    # -- the tick pipeline ----------------------------------------------------------------

    def prepare_tick(self, specs: Sequence[TickQuerySpec]) -> _TickPipeline:
        """Compile (or reuse) the shared-subplan pipeline for one tick's queries.

        The pipeline is cached until the spec list changes (keys, plan
        identities or sink combinators) or plans are invalidated; plan
        identities are pinned by the cached ``PlannedQuery`` objects, so
        the id-keyed cache cannot alias across garbage collection.
        """
        cache_key = tuple(
            (s.key, id(s.plan), s.combinator, s.target_column, s.value_column)
            for s in specs
        )
        pipeline = self._tick_pipeline
        if pipeline is not None and pipeline.key == cache_key:
            self.plan_cache_hits += len(specs)
            return pipeline

        planned = [self.prepare(spec.plan) for spec in specs]
        tick_plan = build_tick_plan(
            [(spec.key, pq.optimized) for spec, pq in zip(specs, planned)]
        )
        lowerer = self.planner.physical_planner
        defs: dict[str, _SharedDefExec] = {}
        lowerer.shared_lowering = _SharedLoweringContext(self, defs)
        try:
            shared_order: list[_SharedDefExec] = []
            for node in tick_plan.shared:
                physical = lowerer.lower(node.plan)
                batch_root = (
                    physical.batch_root if isinstance(physical, BatchBridgeOp) else None
                )
                names = (
                    tuple(batch_root.names)
                    if batch_root is not None
                    else tuple(physical.schema.names)
                )
                shared = _SharedDefExec(
                    node.fingerprint, physical, batch_root, names, node.consumers
                )
                defs[node.fingerprint] = shared
                shared_order.append(shared)
            entries: list[_TickEntryExec] = []
            for spec, pq, entry in zip(specs, planned, tick_plan.entries):
                physical = (
                    lowerer.lower(entry.rewritten) if entry.shared_refs else pq.physical
                )
                sink = (
                    EffectSinkOp(
                        physical, spec.combinator, spec.target_column, spec.value_column
                    )
                    if spec.combinator
                    else None
                )
                entries.append(
                    _TickEntryExec(spec, pq, physical, sink, entry.shared_refs)
                )
        finally:
            lowerer.shared_lowering = None
        pipeline = _TickPipeline(cache_key, entries, shared_order, defs, tick_plan)
        self._tick_pipeline = pipeline
        self._shared_results.clear()
        return pipeline

    def execute_tick(self, specs: Sequence[TickQuerySpec]) -> list[TickQueryResult]:
        """Execute one tick's queries through the shared-plan pipeline.

        Shared subplans are materialized lazily, at most once, when the
        first consumer pulls them; queries registered incremental are
        served from their views exactly as :meth:`execute` would.  The
        shared store is cleared on both sides of the call — results are
        only valid against the table state they were computed from.
        """
        pipeline = self.prepare_tick(specs)
        self._shared_results.clear()
        results: list[TickQueryResult] = []
        fused_rows = 0
        try:
            for entry in pipeline.entries:
                spec = entry.spec
                start = time.perf_counter()
                rows: list[dict[str, Any]] | None = None
                partials: list[EffectPartial] | None = None
                served = self._refresh_incremental(spec.plan)
                if served is not None:
                    view_rows, _ = served
                    if spec.combinator:
                        partials = fold_rows_to_partials(
                            view_rows,
                            spec.combinator,
                            spec.target_column,
                            spec.value_column,
                        )
                    else:
                        rows = view_rows
                elif entry.sink is not None:
                    partials = entry.sink.partials()
                else:
                    rows = entry.physical.rows()
                runtime = time.perf_counter() - start
                if partials is not None:
                    fused_rows += sum(count for _, _, count in partials)
                cached = self._cache.get(id(spec.plan))
                if cached is not None:
                    cached.executions += 1
                    cached.total_runtime += runtime
                results.append(
                    TickQueryResult(spec.key, rows, partials, runtime, entry.planned)
                )
            evaluated = len(self._shared_results)
            self.last_shared_timings = {
                fingerprint: result.seconds
                for fingerprint, result in self._shared_results.items()
            }
        finally:
            self._shared_results.clear()
        tick_plan = pipeline.tick_plan
        self.last_tick_stats = {
            "queries": len(specs),
            "shared_subplans": len(pipeline.shared),
            "shared_subplans_evaluated": evaluated,
            "shared_consumers": tick_plan.shared_reference_count if tick_plan else 0,
            "evaluations_saved": tick_plan.evaluations_saved if tick_plan else 0,
            "fused_queries": sum(1 for e in pipeline.entries if e.sink is not None),
            "fused_effect_rows": fused_rows,
        }
        return results

    # -- shared materializations (called by the pipeline's source operators) ---------------

    def _ensure_shared(self, fingerprint: str) -> _SharedResult:
        result = self._shared_results.get(fingerprint)
        if result is not None:
            return result
        pipeline = self._tick_pipeline
        if pipeline is None or fingerprint not in pipeline.shared_by_fp:
            raise ExecutionError(
                f"shared subplan {fingerprint[:40]!r} has no pipeline definition"
            )
        shared = pipeline.shared_by_fp[fingerprint]
        result = _SharedResult()
        # Evaluation may recurse into _ensure_shared through nested shared
        # sources; nesting is acyclic (a shared subplan only references
        # strictly smaller ones).  Timings therefore nest too: an outer
        # subplan's seconds include the inner ones it pulled in.
        started = time.perf_counter()
        if shared.batch_root is not None:
            result.batch = shared.batch_root.execute()
        else:
            result.rows = shared.physical.rows()
        result.seconds = time.perf_counter() - started
        self._shared_results[fingerprint] = result
        return result

    def _shared_rows(
        self, fingerprint: str, renames: dict[str, str]
    ) -> list[dict[str, Any]]:
        """Consumer-owned row dicts of a shared materialization."""
        result = self._ensure_shared(fingerprint)
        if result.batch is not None:
            rows = result.batch.to_rows()
            if renames:
                return [
                    {renames.get(k, k): v for k, v in row.items()} for row in rows
                ]
            return rows
        assert result.rows is not None
        if renames:
            return [
                {renames.get(k, k): v for k, v in row.items()} for row in result.rows
            ]
        return [dict(row) for row in result.rows]

    def _shared_batch(self, fingerprint: str, renames: dict[str, str]) -> ColumnBatch:
        """A shared materialization as a batch (value lists shared)."""
        result = self._ensure_shared(fingerprint)
        if result.batch is None:
            assert result.rows is not None
            pipeline = self._tick_pipeline
            assert pipeline is not None
            names = pipeline.shared_by_fp[fingerprint].names
            result.batch = ColumnBatch.from_rows(names, result.rows)
        batch = result.batch
        if renames:
            names = [renames.get(n, n) for n in batch.names]
            columns = {renames.get(n, n): batch.columns[n] for n in batch.names}
            return ColumnBatch(names, columns, batch.selection)
        return batch

    # -- reporting -----------------------------------------------------------------------

    def cache_report(self) -> list[dict[str, Any]]:
        """Execution counts and mean runtimes of cached plans."""
        report = []
        for key, entry in self._cache.items():
            mean = entry.total_runtime / entry.executions if entry.executions else 0.0
            report.append(
                {
                    "plan": entry.planned.optimized.node_label(),
                    "executions": entry.executions,
                    "mean_runtime": mean,
                    "estimated_cost": entry.planned.estimated.cost,
                    "batch": entry.planned.uses_batch,
                    "incremental": key in self._incremental,
                }
            )
        return report

    def incremental_report(self) -> list[dict[str, Any]]:
        """Refresh statistics for every registered incremental view."""
        report = []
        for key, (_plan, view) in self._incremental.items():
            entry = self._cache.get(key)
            stats = view.stats()
            stats["plan"] = (
                entry.planned.optimized.node_label() if entry is not None else "?"
            )
            report.append(stats)
        return report

    def fixpoint_report(self) -> dict[str, int]:
        """Cumulative counters of every live :class:`FixpointOp`.

        Walks all lowered plans this executor holds (plan cache, tick
        pipeline entries, shared-subplan definitions), deduplicating
        operators that appear through several roots.  Counters are
        cumulative across executions, so callers diff before/after to
        attribute work to one tick.
        """
        from repro.engine.operators.fixpoint import FixpointOp

        seen: dict[int, FixpointOp] = {}
        roots: list[PhysicalOperator] = [
            entry.planned.physical for entry in self._cache.values()
        ]
        pipeline = self._tick_pipeline
        if pipeline is not None:
            roots.extend(entry.physical for entry in pipeline.entries)
            roots.extend(shared.physical for shared in pipeline.shared)
        for root in roots:
            for op in root.walk():
                if isinstance(op, FixpointOp):
                    seen.setdefault(id(op), op)
        ops = list(seen.values())
        return {
            "operators": len(ops),
            "total_rounds": sum(op.total_rounds for op in ops),
            "total_delta_rows": sum(op.total_delta_rows for op in ops),
            "warm_restarts": sum(op.warm_restarts for op in ops),
            "cache_hits": sum(op.cache_hits for op in ops),
        }

    def tick_sharing_report(self) -> dict[str, Any]:
        """Shape of the compiled tick pipeline plus last-tick statistics."""
        pipeline = self._tick_pipeline
        if pipeline is None:
            return {"queries": 0, "shared_subplans": [], "last_tick": self.last_tick_stats}
        return {
            "queries": len(pipeline.entries),
            "fused_queries": [
                entry.spec.key for entry in pipeline.entries if entry.sink is not None
            ],
            "shared_subplans": [
                {
                    "fingerprint": shared.fingerprint,
                    "consumers": shared.consumers,
                    "batch": shared.batch_root is not None,
                    "plan": shared.physical.label(),
                    "seconds_last_tick": self.last_shared_timings.get(shared.fingerprint),
                }
                for shared in pipeline.shared
            ],
            "last_tick": self.last_tick_stats,
        }
