"""The catalog: a namespace of tables, indexes and collected statistics.

The SGL compiler registers one or more tables per class declaration
(depending on the schema layout strategy, Section 2.1 of the paper); the
optimizer consults the catalog for schemas, available indexes and
statistics.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.engine.errors import CatalogError
from repro.engine.schema import Schema
from repro.engine.statistics import TableStatistics, collect_table_statistics
from repro.engine.table import Table, TableIndex

__all__ = ["Catalog"]


class Catalog:
    """A registry of named tables and their indexes and statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._statistics: dict[str, TableStatistics] = {}
        self._stats_version: dict[str, int] = {}

    # -- tables ---------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema, key: str | None = None) -> Table:
        """Create and register a new table; raises if the name is taken."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, key=key)
        self._tables[name] = table
        return table

    def register_table(self, table: Table) -> None:
        """Register an externally constructed table."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        del self._tables[name]
        self._statistics.pop(name, None)
        self._stats_version.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    # -- indexes ----------------------------------------------------------------------

    def create_index(self, table_name: str, index_name: str, index: TableIndex) -> TableIndex:
        """Attach *index* to *table_name* under *index_name*."""
        table = self.table(table_name)
        table.attach_index(index_name, index)
        return index

    def drop_index(self, table_name: str, index_name: str) -> None:
        self.table(table_name).detach_index(index_name)

    # -- statistics --------------------------------------------------------------------

    def statistics(self, table_name: str, refresh: bool = False) -> TableStatistics:
        """Return (possibly cached) statistics for *table_name*.

        Statistics are recollected lazily whenever the table's version has
        changed since the last collection, or when *refresh* is forced.
        This keeps the "keep statistics about the distribution of our data"
        cost (Section 4.1) out of the per-tick critical path.
        """
        table = self.table(table_name)
        cached = self._statistics.get(table_name)
        if (
            refresh
            or cached is None
            or self._stats_version.get(table_name) != table.version
        ):
            cached = collect_table_statistics(table)
            self._statistics[table_name] = cached
            self._stats_version[table_name] = table.version
        return cached

    def invalidate_statistics(self, table_name: str | None = None) -> None:
        """Drop cached statistics for one table or for all tables."""
        if table_name is None:
            self._statistics.clear()
            self._stats_version.clear()
        else:
            self._statistics.pop(table_name, None)
            self._stats_version.pop(table_name, None)

    def summary(self) -> Mapping[str, int]:
        """Return a mapping of table name to row count (for debug tooling)."""
        return {name: len(table) for name, table in self._tables.items()}
