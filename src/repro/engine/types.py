"""Column data types for the SGL engine.

The paper's class declarations (Section 2.1, Figure 1) use a small set of
scalar types (``number``, ``bool``, ``string``), plus two structured types
added when the compiler took over schema generation: *references* to other
game objects and *(unordered) sets*.  This module defines those types, the
coercion rules used when values flow from scripts into tables, and the
default value for each type.

Types are deliberately permissive in the way a game scripting language is:
``number`` covers both ints and floats, and comparisons between numbers and
booleans behave like Python.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.engine.errors import TypeMismatchError

__all__ = [
    "DataType",
    "Ref",
    "ValueSet",
    "coerce_value",
    "default_value",
    "is_valid",
    "type_of_value",
]


class DataType(enum.Enum):
    """Enumeration of column types supported by the engine.

    ``NUMBER``
        Integers and floats (the paper's ``number``).
    ``BOOL``
        Booleans.
    ``STRING``
        Unicode strings.
    ``REF``
        A reference to another row (game object), stored as the referenced
        object id or ``None``.
    ``SET``
        An unordered set of scalar values, stored as a :class:`frozenset`.
    ``ANY``
        Used internally for computed columns whose type is not statically
        known (e.g. results of user-defined combinators).
    """

    NUMBER = "number"
    BOOL = "bool"
    STRING = "string"
    REF = "ref"
    SET = "set"
    ANY = "any"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Ref:
    """A typed reference to a game object (row) in some class table.

    A :class:`Ref` is a small immutable value object; it compares equal to
    another reference with the same target class and object id.  The engine
    stores references in ``REF`` columns; ``None`` is the null reference.
    """

    __slots__ = ("class_name", "oid")

    def __init__(self, class_name: str, oid: int):
        self.class_name = class_name
        self.oid = int(oid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ref):
            return NotImplemented
        return self.class_name == other.class_name and self.oid == other.oid

    def __hash__(self) -> int:
        return hash((self.class_name, self.oid))

    def __repr__(self) -> str:
        return f"Ref({self.class_name!r}, {self.oid})"


#: The concrete Python type used to store SET columns.
ValueSet = frozenset


def default_value(dtype: DataType) -> Any:
    """Return the default value stored for a column of type *dtype*.

    Mirrors the defaults in the paper's Figure 1 (``number player = 0``):
    numbers default to ``0``, booleans to ``False``, strings to ``""``,
    references to ``None`` and sets to the empty frozenset.
    """
    if dtype is DataType.NUMBER:
        return 0
    if dtype is DataType.BOOL:
        return False
    if dtype is DataType.STRING:
        return ""
    if dtype is DataType.REF:
        return None
    if dtype is DataType.SET:
        return frozenset()
    return None


def is_valid(dtype: DataType, value: Any) -> bool:
    """Return whether *value* is acceptable for a column of type *dtype*."""
    if value is None:
        # Null is allowed in every type; nullability is enforced by Schema.
        return True
    if dtype is DataType.NUMBER:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if dtype is DataType.BOOL:
        return isinstance(value, bool)
    if dtype is DataType.STRING:
        return isinstance(value, str)
    if dtype is DataType.REF:
        return isinstance(value, (Ref, int))
    if dtype is DataType.SET:
        return isinstance(value, (set, frozenset))
    return True  # ANY


def coerce_value(dtype: DataType, value: Any) -> Any:
    """Coerce *value* into the canonical representation for *dtype*.

    Raises :class:`TypeMismatchError` when the value cannot be represented.
    Numeric strings are *not* coerced — scripts must be explicit — but ints
    are accepted for ``NUMBER``, plain ints for ``REF`` (an untyped object
    id), and mutable sets are frozen for ``SET`` columns.
    """
    if value is None:
        return None
    if dtype is DataType.NUMBER:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"expected number, got {value!r}")
        if isinstance(value, float) and math.isnan(value):
            raise TypeMismatchError("NaN is not a valid number value")
        return value
    if dtype is DataType.BOOL:
        if not isinstance(value, bool):
            raise TypeMismatchError(f"expected bool, got {value!r}")
        return value
    if dtype is DataType.STRING:
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected string, got {value!r}")
        return value
    if dtype is DataType.REF:
        if isinstance(value, Ref):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise TypeMismatchError(f"expected reference, got {value!r}")
    if dtype is DataType.SET:
        if isinstance(value, frozenset):
            return value
        if isinstance(value, (set, list, tuple)):
            return frozenset(value)
        raise TypeMismatchError(f"expected set, got {value!r}")
    return value  # ANY


def type_of_value(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value (used for literals)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, (int, float)):
        return DataType.NUMBER
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, Ref):
        return DataType.REF
    if isinstance(value, (set, frozenset)):
        return DataType.SET
    return DataType.ANY
