"""Cardinality and cost estimation for logical plans.

The cost model is deliberately simple — the classic ``C_out`` metric (sum of
estimated intermediate result sizes) plus per-operator constants — because
what the adaptive optimizer of Section 4.1 needs is *relative* ordering of
candidate plans under different workload states, not absolute timings.
Cardinalities come from :mod:`repro.engine.statistics`: per-column
histograms for single-table predicates and row samples for correlated
multi-dimensional range predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.algebra import (
    Aggregate,
    Distinct,
    Exchange,
    Fixpoint,
    Join,
    Limit,
    LogicalPlan,
    Project,
    RecursiveRef,
    Select,
    ShardedScan,
    Sort,
    TableScan,
    Union,
    Values,
)
from repro.engine.catalog import Catalog
from repro.engine.expressions import BinaryOp, ColumnRef, Expression
from repro.engine.statistics import (
    DEFAULT_EQUALITY_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    TableStatistics,
    estimate_selectivity,
    join_selectivity,
)

__all__ = ["CostModel", "PlanCost"]


@dataclass(frozen=True)
class PlanCost:
    """Estimated output cardinality and cumulative cost of a plan.

    ``cardinality`` is the expected number of output rows; ``cost`` is the
    C_out-style cumulative work of the whole subtree (intermediate result
    sizes plus per-operator constants).  Instances are ordered by ``cost``
    so candidate plans can be compared with ``min`` during join-order
    enumeration and adaptive plan selection.
    """

    cardinality: float
    cost: float

    def __lt__(self, other: "PlanCost") -> bool:
        return self.cost < other.cost


class CostModel:
    """Estimates cardinalities and C_out-style costs against a catalog.

    Cardinalities come from the catalog's collected statistics
    (:mod:`repro.engine.statistics`): per-column histograms for
    single-table predicates, distinct counts for group-by and equi-join
    selectivity, and fixed fallback selectivities where no statistics
    apply.  Costs sum estimated intermediate result sizes weighted by the
    per-operator constants below; only the *relative* ordering of candidate
    plans matters, so the constants are calibrated for plausibility, not
    wall-clock accuracy.  Both estimates read the *current* table sizes and
    statistics, which is what lets the adaptive optimizer get different
    answers for different workload states.
    """

    #: Per-row cost charged for producing one output row of any operator.
    ROW_COST = 1.0
    #: Extra per-row cost of evaluating a predicate or projection expression.
    EXPR_COST = 0.2
    #: Build-side cost factor for hash joins / aggregation.
    HASH_COST = 1.2
    #: Per probed cell / log-factor cost for index and band joins.
    INDEX_PROBE_COST = 4.0
    #: Per-inner-row cost of (re)building a transient band-join grid.  Paid
    #: on **every execution** by the grid-rebuild path; a registered table
    #: index amortizes it into the mutations that are happening anyway.
    GRID_BUILD_COST = 1.2
    #: Assumed iteration count of a Fixpoint (semi-naive rounds until the
    #: delta dries up).  Graph diameters vary wildly; a fixed moderate
    #: round count keeps recursive plans comparable to flat ones.
    FIXPOINT_ROUNDS = 8.0
    #: Assumed closure blow-up of a Fixpoint over its base (seed) relation.
    FIXPOINT_GROWTH = 10.0
    #: Assumed frontier size when costing a step body's RecursiveRef —
    #: mid-iteration cardinality is unknowable statically.
    REC_REF_CARD = 256.0
    #: Assumed wire bytes for one exchanged row (compact JSON, pre-deflate).
    EXCHANGE_ROW_BYTES = 64.0
    #: Cost per wire byte shipped through an Exchange.  Cross-shard bytes
    #: are the scarce resource once work is spread over processes — the
    #: Swapped Dragonfly lesson — so a shipped row costs several times the
    #: local per-row handling and plans are pushed to minimize shuffles.
    EXCHANGE_BYTE_COST = 0.05
    #: Fraction of a shard's rows expected to cross a boundary per tick
    #: when an Exchange runs in handoff-detection mode (exclude_shard set).
    HANDOFF_FRACTION = 0.05

    def __init__(self, catalog: Catalog, use_indexes: bool = True):
        self.catalog = catalog
        #: Mirrors the physical planner's flag: with index plans disabled,
        #: costing must not assume an index-probe lowering that execution
        #: will never use.
        self.use_indexes = use_indexes

    # -- cardinality ------------------------------------------------------------------

    def table_statistics(self, plan: LogicalPlan) -> TableStatistics | None:
        """Statistics of the single base table below *plan*, if unique."""
        tables = plan.referenced_tables()
        if len(tables) != 1:
            return None
        (name,) = tables
        if not self.catalog.has_table(name):
            return None
        return self.catalog.statistics(name)

    def cardinality(self, plan: LogicalPlan) -> float:
        if isinstance(plan, TableScan):
            if self.catalog.has_table(plan.table_name):
                return float(len(self.catalog.table(plan.table_name)))
            return 1000.0
        if isinstance(plan, Values):
            return float(len(plan.rows))
        if isinstance(plan, Select):
            child = self.cardinality(plan.child)
            stats = self.table_statistics(plan.child)
            return child * estimate_selectivity(plan.predicate, stats)
        if isinstance(plan, Project):
            return self.cardinality(plan.child)
        if isinstance(plan, Join):
            return self._join_cardinality(plan)
        if isinstance(plan, Aggregate):
            return self._aggregate_cardinality(plan)
        if isinstance(plan, Distinct):
            return max(1.0, 0.9 * self.cardinality(plan.child))
        if isinstance(plan, Sort):
            return self.cardinality(plan.child)
        if isinstance(plan, Limit):
            return min(float(plan.count), self.cardinality(plan.child))
        if isinstance(plan, Union):
            return self.cardinality(plan.left) + self.cardinality(plan.right)
        if isinstance(plan, Fixpoint):
            return max(1.0, self.cardinality(plan.base) * self.FIXPOINT_GROWTH)
        if isinstance(plan, RecursiveRef):
            return self.REC_REF_CARD
        if isinstance(plan, ShardedScan):
            # Expanding reuses the histogram-based range selectivity.
            return self.cardinality(plan.to_select())
        if isinstance(plan, Exchange):
            child = self.cardinality(plan.child)
            if plan.exclude_shard is not None:
                return max(1.0, child * self.HANDOFF_FRACTION)
            return child
        children = plan.children()
        if children:
            return self.cardinality(children[0])
        return 1.0

    def _join_cardinality(self, plan: Join) -> float:
        left = self.cardinality(plan.left)
        right = self.cardinality(plan.right)
        if plan.how == "cross" or plan.condition is None:
            return left * right
        selectivity = self.join_condition_selectivity(plan.condition, plan.left, plan.right)
        cardinality = left * right * selectivity
        if plan.how == "left":
            cardinality = max(cardinality, left)
        return max(1.0, cardinality)

    def join_condition_selectivity(
        self, condition: Expression, left: LogicalPlan, right: LogicalPlan
    ) -> float:
        """Selectivity of a join condition, conjunct by conjunct."""
        left_stats = self.table_statistics(left)
        right_stats = self.table_statistics(right)
        conjuncts = condition.conjuncts() if isinstance(condition, BinaryOp) else [condition]
        selectivity = 1.0
        for conjunct in conjuncts:
            selectivity *= self._conjunct_selectivity(conjunct, left_stats, right_stats)
        return selectivity

    def _conjunct_selectivity(
        self,
        conjunct: Expression,
        left_stats: TableStatistics | None,
        right_stats: TableStatistics | None,
    ) -> float:
        if isinstance(conjunct, BinaryOp) and conjunct.op == "==":
            lcol = conjunct.left.name if isinstance(conjunct.left, ColumnRef) else None
            rcol = conjunct.right.name if isinstance(conjunct.right, ColumnRef) else None
            if lcol and rcol:
                return join_selectivity(left_stats, right_stats, lcol, rcol)
            return DEFAULT_EQUALITY_SELECTIVITY
        if isinstance(conjunct, BinaryOp) and conjunct.op in ("<", "<=", ">", ">="):
            # Range conjuncts (one side of a band predicate): assume a
            # moderately selective band; two of them give ~0.09.
            return 0.3
        return DEFAULT_SELECTIVITY

    def _aggregate_cardinality(self, plan: Aggregate) -> float:
        child = self.cardinality(plan.child)
        if not plan.group_by:
            return 1.0
        stats = self.table_statistics(plan.child)
        groups = 1.0
        if stats is not None:
            for column in plan.group_by:
                cs = stats.column(column)
                if cs is not None and cs.distinct_count:
                    groups *= cs.distinct_count
                else:
                    groups *= max(1.0, child ** 0.5)
        else:
            groups = max(1.0, child ** 0.8)
        return max(1.0, min(child, groups))

    # -- cost --------------------------------------------------------------------------

    def cost(self, plan: LogicalPlan) -> PlanCost:
        """Estimate the cumulative cost (C_out + operator constants)."""
        if isinstance(plan, (TableScan, Values)):
            card = self.cardinality(plan)
            return PlanCost(card, card * self.ROW_COST)
        if isinstance(plan, Select):
            child = self.cost(plan.child)
            card = self.cardinality(plan)
            return PlanCost(card, child.cost + child.cardinality * self.EXPR_COST + card)
        if isinstance(plan, Project):
            child = self.cost(plan.child)
            n_exprs = max(1, len(plan.projections))
            return PlanCost(
                child.cardinality,
                child.cost + child.cardinality * self.EXPR_COST * n_exprs,
            )
        if isinstance(plan, Join):
            return self._join_cost(plan)
        if isinstance(plan, Aggregate):
            child = self.cost(plan.child)
            card = self.cardinality(plan)
            return PlanCost(card, child.cost + child.cardinality * self.HASH_COST + card)
        if isinstance(plan, (Sort, Distinct)):
            child = self.cost(plan.child)
            import math

            sort_cost = child.cardinality * max(1.0, math.log2(child.cardinality + 2))
            return PlanCost(child.cardinality, child.cost + sort_cost)
        if isinstance(plan, Limit):
            child = self.cost(plan.child)
            card = self.cardinality(plan)
            return PlanCost(card, child.cost + card)
        if isinstance(plan, Union):
            left = self.cost(plan.left)
            right = self.cost(plan.right)
            return PlanCost(left.cardinality + right.cardinality, left.cost + right.cost)
        if isinstance(plan, Fixpoint):
            base = self.cost(plan.base)
            step = self.cost(plan.step)
            card = self.cardinality(plan)
            work = base.cost + step.cost * self.FIXPOINT_ROUNDS + card * self.HASH_COST
            return PlanCost(card, work)
        if isinstance(plan, RecursiveRef):
            card = self.cardinality(plan)
            return PlanCost(card, card * self.ROW_COST)
        if isinstance(plan, ShardedScan):
            return self.cost(plan.to_select())
        if isinstance(plan, Exchange):
            child = self.cost(plan.child)
            card = self.cardinality(plan)
            wire = card * self.EXCHANGE_ROW_BYTES * self.EXCHANGE_BYTE_COST
            return PlanCost(card, child.cost + child.cardinality * self.EXPR_COST + wire + card)
        children = [self.cost(c) for c in plan.children()]
        total = sum(c.cost for c in children)
        card = self.cardinality(plan)
        return PlanCost(card, total + card)

    def _join_cost(self, plan: Join) -> PlanCost:
        left = self.cost(plan.left)
        right = self.cost(plan.right)
        card = self.cardinality(plan)
        if plan.how == "cross" or plan.condition is None:
            work = left.cardinality * right.cardinality
        else:
            conjuncts = (
                plan.condition.conjuncts()
                if isinstance(plan.condition, BinaryOp)
                else [plan.condition]
            )
            has_equi = any(
                isinstance(c, BinaryOp)
                and c.op == "=="
                and isinstance(c.left, ColumnRef)
                and isinstance(c.right, ColumnRef)
                for c in conjuncts
            )
            has_band = any(
                isinstance(c, BinaryOp) and c.op in ("<", "<=", ">", ">=") for c in conjuncts
            )
            if has_equi:
                work = left.cardinality + right.cardinality * self.HASH_COST + card
            elif has_band:
                work = (
                    self.band_join_work(
                        left.cardinality,
                        right.cardinality,
                        persistent_index=self._band_index_available(plan, conjuncts),
                    )
                    + card
                )
            else:
                work = left.cardinality * right.cardinality
        return PlanCost(card, left.cost + right.cost + work + card)

    # -- band joins -------------------------------------------------------------------

    def band_join_work(
        self, outer_cardinality: float, inner_cardinality: float, persistent_index: bool
    ) -> float:
        """Work of a band join: the probe loop, plus — without a persistent
        index on the inner side — rebuilding the transient grid per tick."""
        probe = outer_cardinality * self.INDEX_PROBE_COST
        if persistent_index:
            return probe
        return probe + inner_cardinality * self.GRID_BUILD_COST

    def _band_index_available(self, plan: Join, conjuncts: list[Expression]) -> bool:
        """Whether the join's inner side has a registered index covering its
        band-probe columns (makes cost estimates reflect the index-probing
        lowering the physical planner will choose)."""
        from repro.engine.optimizer.physical import _extract_range_probe, match_band_index

        if not self.use_indexes:
            return False
        try:
            left_schema = plan.left.output_schema(self.catalog)
            right_schema = plan.right.output_schema(self.catalog)
        except Exception:
            return False
        probe = _extract_range_probe(conjuncts, left_schema, right_schema)
        if not probe:
            return False
        return match_band_index(self.catalog, plan.right, probe[0]) is not None
