"""Adaptive multi-plan query optimization (Section 4.1).

The SGL workload repeats the same query every tick while the data drifts
between a small number of *workload states* ("exploring", "fighting", …).
Rather than re-optimizing every tick (too slow) or optimizing once (wrong
plan half the time), the engine:

1. compiles a plan per registered workload state, using statistics captured
   while the game was in that state (:meth:`AdaptiveQueryManager.compile_for_state`),
2. executes whichever plan is currently selected,
3. monitors cheap runtime signals — observed operator cardinalities vs. the
   estimates the plan was built with — and re-plans / switches plans when
   the observed behaviour drifts past a threshold
   (:meth:`AdaptiveQueryManager.record_execution`).

This is deliberately in the spirit of Cole & Graefe's dynamic query
evaluation plans (the paper's reference [2]) specialized to the tick-loop
workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.algebra import LogicalPlan
from repro.engine.catalog import Catalog
from repro.engine.operators import PhysicalOperator
from repro.engine.optimizer.planner import PlannedQuery, Planner

__all__ = ["AdaptiveQueryManager", "PlanChoice", "ExecutionFeedback"]

#: Re-plan when observed output cardinality differs from the estimate by
#: more than this factor (in either direction).
DEFAULT_DRIFT_THRESHOLD = 3.0
#: Minimum number of executions between plan switches (hysteresis).
DEFAULT_SWITCH_COOLDOWN = 3


@dataclass
class PlanChoice:
    """One compiled plan, tagged with the workload state it was built for.

    Besides the :class:`PlannedQuery` itself, the choice accumulates the
    runtime counters (executions, total runtime, total output rows) that
    :meth:`AdaptiveQueryManager.record_execution` uses to detect drift
    between this plan's cost-model estimates and observed behaviour.
    """

    state: str
    planned: PlannedQuery
    compiled_at: float = field(default_factory=time.monotonic)
    executions: int = 0
    total_runtime: float = 0.0
    total_rows: int = 0

    @property
    def mean_runtime(self) -> float:
        return self.total_runtime / self.executions if self.executions else 0.0


@dataclass
class ExecutionFeedback:
    """Runtime signals from one execution of the current plan.

    ``rows`` and ``runtime`` are the cheap always-available signals
    (observed output cardinality and wall clock); ``state_hint`` is the
    optional explicit signal from the game — "combat started" — which
    short-circuits drift detection and switches plans immediately.
    """

    rows: int
    runtime: float
    state_hint: str | None = None


class AdaptiveQueryManager:
    """Maintains several compiled plans for one logical query and switches
    between them based on runtime feedback.

    One manager serves one logical query across the whole run: it holds a
    compiled :class:`PlanChoice` per registered workload state, tracks
    which is current, and implements the monitor-and-switch policy
    documented on :meth:`record_execution` (explicit hints first, then
    cardinality-drift detection with a cooldown as hysteresis).
    """

    def __init__(
        self,
        catalog: Catalog,
        logical: LogicalPlan,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        switch_cooldown: int = DEFAULT_SWITCH_COOLDOWN,
        planner_factory: Callable[[Catalog], Planner] | None = None,
    ):
        self.catalog = catalog
        self.logical = logical
        self.drift_threshold = drift_threshold
        self.switch_cooldown = switch_cooldown
        self._planner_factory = planner_factory or (lambda cat: Planner(cat))
        self._plans: dict[str, PlanChoice] = {}
        self._current_state: str | None = None
        self._executions_since_switch = 0
        self.switch_count = 0
        self.replan_count = 0

    # -- compilation -------------------------------------------------------------------

    def compile_for_state(self, state: str, refresh_statistics: bool = True) -> PlanChoice:
        """Compile (or re-compile) the plan for a named workload state.

        Call this while the game data is representative of *state* so the
        captured statistics reflect it.
        """
        if refresh_statistics:
            for table_name in self.logical.referenced_tables():
                if self.catalog.has_table(table_name):
                    self.catalog.statistics(table_name, refresh=True)
        planner = self._planner_factory(self.catalog)
        planned = planner.plan(self.logical)
        choice = PlanChoice(state=state, planned=planned)
        self._plans[state] = choice
        self.replan_count += 1
        if self._current_state is None:
            self._current_state = state
        return choice

    # -- selection ----------------------------------------------------------------------

    @property
    def states(self) -> list[str]:
        return sorted(self._plans)

    @property
    def current_state(self) -> str | None:
        return self._current_state

    def current_plan(self) -> PlannedQuery:
        if self._current_state is None:
            raise RuntimeError("no plan compiled yet; call compile_for_state first")
        return self._plans[self._current_state].planned

    def physical_plan(self) -> PhysicalOperator:
        return self.current_plan().physical

    def switch_to(self, state: str) -> None:
        """Explicitly switch to the plan compiled for *state*."""
        if state not in self._plans:
            raise KeyError(f"no plan compiled for state {state!r}")
        if state != self._current_state:
            self._current_state = state
            self.switch_count += 1
            self._executions_since_switch = 0

    # -- feedback loop ---------------------------------------------------------------------

    def record_execution(self, feedback: ExecutionFeedback) -> str:
        """Fold in runtime feedback; may switch plans.  Returns current state.

        Switching policy, in priority order:

        1. an explicit ``state_hint`` (the game announces "combat started")
           switches immediately — compiling the state lazily if needed;
        2. cardinality drift beyond ``drift_threshold`` relative to the
           current plan's estimate triggers a re-plan of the current state
           against fresh statistics, then adopts whichever compiled plan is
           now cheapest.
        """
        if self._current_state is None:
            raise RuntimeError("no plan compiled yet")
        choice = self._plans[self._current_state]
        choice.executions += 1
        choice.total_runtime += feedback.runtime
        choice.total_rows += feedback.rows
        self._executions_since_switch += 1

        if feedback.state_hint is not None and feedback.state_hint != self._current_state:
            if feedback.state_hint not in self._plans:
                self.compile_for_state(feedback.state_hint)
            self.switch_to(feedback.state_hint)
            return self._current_state

        if self._executions_since_switch < self.switch_cooldown:
            return self._current_state

        estimate = max(1.0, choice.planned.estimated.cardinality)
        observed = max(1.0, float(feedback.rows))
        drift = max(estimate / observed, observed / estimate)
        if drift > self.drift_threshold:
            self.compile_for_state(self._current_state)
            best_state = min(
                self._plans,
                key=lambda s: self._plans[s].planned.estimated.cost,
            )
            self.switch_to(best_state)
        return self._current_state

    # -- reporting -----------------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Summary used by benchmarks and the debugger."""
        return {
            "current_state": self._current_state,
            "states": {
                state: {
                    "executions": choice.executions,
                    "mean_runtime": choice.mean_runtime,
                    "estimated_cost": choice.planned.estimated.cost,
                    "estimated_rows": choice.planned.estimated.cardinality,
                }
                for state, choice in self._plans.items()
            },
            "switches": self.switch_count,
            "replans": self.replan_count,
        }
