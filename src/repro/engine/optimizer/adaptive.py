"""Adaptive multi-plan query optimization (Section 4.1).

The SGL workload repeats the same query every tick while the data drifts
between a small number of *workload states* ("exploring", "fighting", …).
Rather than re-optimizing every tick (too slow) or optimizing once (wrong
plan half the time), the engine:

1. compiles a plan per registered workload state, using statistics captured
   while the game was in that state (:meth:`AdaptiveQueryManager.compile_for_state`),
2. executes whichever plan is currently selected,
3. monitors cheap runtime signals — observed operator cardinalities vs. the
   estimates the plan was built with — and re-plans / switches plans when
   the observed behaviour drifts past a threshold
   (:meth:`AdaptiveQueryManager.record_execution`).

This is deliberately in the spirit of Cole & Graefe's dynamic query
evaluation plans (the paper's reference [2]) specialized to the tick-loop
workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.algebra import LogicalPlan
from repro.engine.catalog import Catalog
from repro.engine.errors import CatalogError
from repro.engine.indexes import GridIndex, SortedIndex
from repro.engine.operators import PhysicalOperator
from repro.engine.optimizer.planner import PlannedQuery, Planner
from repro.engine.statistics import suggest_grid_cell_size

__all__ = ["AdaptiveQueryManager", "PlanChoice", "ExecutionFeedback", "IndexAdvisor"]

#: Re-plan when observed output cardinality differs from the estimate by
#: more than this factor (in either direction).
DEFAULT_DRIFT_THRESHOLD = 3.0
#: Minimum number of executions between plan switches (hysteresis).
DEFAULT_SWITCH_COOLDOWN = 3


@dataclass
class PlanChoice:
    """One compiled plan, tagged with the workload state it was built for.

    Besides the :class:`PlannedQuery` itself, the choice accumulates the
    runtime counters (executions, total runtime, total output rows) that
    :meth:`AdaptiveQueryManager.record_execution` uses to detect drift
    between this plan's cost-model estimates and observed behaviour.
    """

    state: str
    planned: PlannedQuery
    compiled_at: float = field(default_factory=time.monotonic)
    executions: int = 0
    total_runtime: float = 0.0
    total_rows: int = 0

    @property
    def mean_runtime(self) -> float:
        return self.total_runtime / self.executions if self.executions else 0.0


@dataclass
class ExecutionFeedback:
    """Runtime signals from one execution of the current plan.

    ``rows`` and ``runtime`` are the cheap always-available signals
    (observed output cardinality and wall clock); ``state_hint`` is the
    optional explicit signal from the game — "combat started" — which
    short-circuits drift detection and switches plans immediately.
    """

    rows: int
    runtime: float
    state_hint: str | None = None


@dataclass
class _BandJoinObservation:
    """Probe activity for one ``(table, probe columns)`` band-join shape.

    Hooks installed by the physical planner accumulate per-tick counters;
    :meth:`IndexAdvisor.end_tick` folds them into the hot streak and the
    EWMA probe width that sizes an auto-created grid's cells.
    """

    probes_this_tick: int = 0
    width_sum: float = 0.0
    width_count: int = 0
    hot_streak: int = 0
    last_active_tick: int = -1
    mean_width: float | None = None
    #: Largest per-execution average probe width ever observed.  The EWMA
    #: forgets spikes; halo sizing in the sharded engine must not, because
    #: a boundary strip narrower than the widest probe silently drops join
    #: partners.
    max_width: float = 0.0


class IndexAdvisor:
    """Auto-creates persistent indexes for band-join columns that stay hot.

    The planner emits an index-probing join only when the inner table has a
    registered range-capable index — but registering one by hand requires
    knowing the workload.  The advisor closes the loop: lowered band joins
    report their probe activity through hooks
    (:meth:`make_hook`), and once a ``(table, columns)`` shape has probed
    for ``create_after`` consecutive ticks on a large-enough table, the
    advisor creates a :class:`~repro.engine.indexes.SortedIndex` (one
    dimension) or :class:`~repro.engine.indexes.GridIndex` (cell size from
    observed probe widths, else column statistics) for it.  Indexes it
    created are evicted again after ``evict_after`` ticks without any
    probes — mirroring :class:`IncrementalView`'s self-disable, the
    structure stops paying rent when the query stops running.

    ``end_tick`` returns ``True`` when the catalog shape changed so the
    caller (:class:`~repro.runtime.world.GameWorld`) can invalidate cached
    plans and let the next execution pick up the new index.
    """

    #: Name prefix of advisor-created indexes (also how tests find them).
    AUTO_INDEX_PREFIX = "auto_band_"

    def __init__(
        self,
        catalog: Catalog,
        create_after: int = 3,
        evict_after: int = 30,
        min_table_rows: int = 128,
    ):
        self.catalog = catalog
        self.create_after = create_after
        self.evict_after = evict_after
        self.min_table_rows = min_table_rows
        self._observations: dict[tuple[str, tuple[str, ...]], _BandJoinObservation] = {}
        self._created: dict[tuple[str, tuple[str, ...]], str] = {}
        self._tick = 0
        self.created_count = 0
        self.evicted_count = 0

    # -- recording ----------------------------------------------------------------------

    def make_hook(self, table_name: str, columns: tuple[str, ...]) -> Callable[[int, float, int], None]:
        """A stats hook for one band-join shape, installed on the lowered
        operator by the physical planner and called once per execution."""
        key = (table_name, tuple(columns))

        def hook(n_probes: int, width_sum: float, width_count: int) -> None:
            self.observe(key, n_probes, width_sum, width_count)

        return hook

    def observe(
        self, key: tuple[str, tuple[str, ...]], n_probes: int, width_sum: float, width_count: int
    ) -> None:
        obs = self._observations.setdefault(key, _BandJoinObservation())
        obs.probes_this_tick += n_probes
        obs.width_sum += width_sum
        obs.width_count += width_count
        if width_count:
            obs.max_width = max(obs.max_width, width_sum / width_count)

    # -- the per-tick decision ------------------------------------------------------------

    def end_tick(self) -> bool:
        """Fold this tick's observations; create/evict indexes.

        Returns ``True`` when an index was created or evicted (the caller
        should invalidate cached plans).
        """
        changed = False
        for key, obs in self._observations.items():
            if obs.probes_this_tick > 0:
                obs.hot_streak += 1
                obs.last_active_tick = self._tick
                if obs.width_count:
                    width = obs.width_sum / obs.width_count
                    obs.mean_width = (
                        width if obs.mean_width is None else 0.8 * obs.mean_width + 0.2 * width
                    )
            else:
                obs.hot_streak = 0
            obs.probes_this_tick = 0
            obs.width_sum = 0.0
            obs.width_count = 0
            if obs.hot_streak >= self.create_after and key not in self._created:
                changed = self._create_index(key, obs) or changed
        for key, index_name in list(self._created.items()):
            obs = self._observations.get(key)
            last_active = obs.last_active_tick if obs is not None else -1
            if self._tick - last_active > self.evict_after:
                table_name, _ = key
                try:
                    self.catalog.drop_index(table_name, index_name)
                except CatalogError:
                    pass  # table or index dropped by someone else
                del self._created[key]
                self.evicted_count += 1
                changed = True
        self._tick += 1
        return changed

    def _create_index(self, key: tuple[str, tuple[str, ...]], obs: _BandJoinObservation) -> bool:
        table_name, columns = key
        if not self.catalog.has_table(table_name):
            return False
        table = self.catalog.table(table_name)
        if len(table) < self.min_table_rows:
            return False
        try:
            resolved = tuple(table.schema.resolve(c.split(".")[-1]) for c in columns)
        except Exception:
            return False
        if table.find_index_covering(resolved) is not None:
            return False  # a usable (range-capable) index already exists
        if len(resolved) == 1:
            index = SortedIndex(resolved[0])
        else:
            stats = self.catalog.statistics(table_name)
            cell_size = suggest_grid_cell_size(stats, resolved, obs.mean_width)
            index = GridIndex(resolved, cell_size=cell_size)
        base_name = self.AUTO_INDEX_PREFIX + "_".join(c.split(".")[-1] for c in resolved)
        index_name = base_name
        suffix = 1
        while index_name in table.indexes:
            index_name = f"{base_name}_{suffix}"
            suffix += 1
        self.catalog.create_index(table_name, index_name, index)
        self._created[key] = index_name
        self.created_count += 1
        return True

    # -- introspection --------------------------------------------------------------------

    def created_indexes(self) -> dict[str, list[str]]:
        """Advisor-created indexes per table (tests and debug tooling)."""
        out: dict[str, list[str]] = {}
        for (table_name, _), index_name in self._created.items():
            out.setdefault(table_name, []).append(index_name)
        return out

    def probe_width_report(self) -> dict[str, dict[str, float]]:
        """Observed band-join probe widths per table.

        The sharded engine's adaptive halo sizing reads this: a boundary
        strip must be at least half the widest probe (plus margin) for
        band joins near a shard edge to see all their partners.  Widths
        are per-execution averages, so callers should leave headroom when
        per-row probe widths vary.
        """
        out: dict[str, dict[str, float]] = {}
        for (table, _columns), obs in self._observations.items():
            if obs.max_width <= 0.0:
                continue
            entry = out.setdefault(table, {"mean_width": 0.0, "max_width": 0.0})
            if obs.mean_width is not None:
                entry["mean_width"] = max(entry["mean_width"], obs.mean_width)
            entry["max_width"] = max(entry["max_width"], obs.max_width)
        return out

    def report(self) -> dict[str, Any]:
        return {
            "tick": self._tick,
            "created": self.created_count,
            "evicted": self.evicted_count,
            "active": {
                f"{table}({', '.join(columns)})": self._created.get((table, columns))
                for table, columns in self._observations
            },
        }


class AdaptiveQueryManager:
    """Maintains several compiled plans for one logical query and switches
    between them based on runtime feedback.

    One manager serves one logical query across the whole run: it holds a
    compiled :class:`PlanChoice` per registered workload state, tracks
    which is current, and implements the monitor-and-switch policy
    documented on :meth:`record_execution` (explicit hints first, then
    cardinality-drift detection with a cooldown as hysteresis).
    """

    def __init__(
        self,
        catalog: Catalog,
        logical: LogicalPlan,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        switch_cooldown: int = DEFAULT_SWITCH_COOLDOWN,
        planner_factory: Callable[[Catalog], Planner] | None = None,
    ):
        self.catalog = catalog
        self.logical = logical
        self.drift_threshold = drift_threshold
        self.switch_cooldown = switch_cooldown
        self._planner_factory = planner_factory or (lambda cat: Planner(cat))
        self._plans: dict[str, PlanChoice] = {}
        self._current_state: str | None = None
        self._executions_since_switch = 0
        self.switch_count = 0
        self.replan_count = 0

    # -- compilation -------------------------------------------------------------------

    def compile_for_state(self, state: str, refresh_statistics: bool = True) -> PlanChoice:
        """Compile (or re-compile) the plan for a named workload state.

        Call this while the game data is representative of *state* so the
        captured statistics reflect it.
        """
        if refresh_statistics:
            for table_name in self.logical.referenced_tables():
                if self.catalog.has_table(table_name):
                    self.catalog.statistics(table_name, refresh=True)
        planner = self._planner_factory(self.catalog)
        planned = planner.plan(self.logical)
        choice = PlanChoice(state=state, planned=planned)
        self._plans[state] = choice
        self.replan_count += 1
        if self._current_state is None:
            self._current_state = state
        return choice

    # -- selection ----------------------------------------------------------------------

    @property
    def states(self) -> list[str]:
        return sorted(self._plans)

    @property
    def current_state(self) -> str | None:
        return self._current_state

    def current_plan(self) -> PlannedQuery:
        if self._current_state is None:
            raise RuntimeError("no plan compiled yet; call compile_for_state first")
        return self._plans[self._current_state].planned

    def physical_plan(self) -> PhysicalOperator:
        return self.current_plan().physical

    def switch_to(self, state: str) -> None:
        """Explicitly switch to the plan compiled for *state*."""
        if state not in self._plans:
            raise KeyError(f"no plan compiled for state {state!r}")
        if state != self._current_state:
            self._current_state = state
            self.switch_count += 1
            self._executions_since_switch = 0

    # -- feedback loop ---------------------------------------------------------------------

    def record_execution(self, feedback: ExecutionFeedback) -> str:
        """Fold in runtime feedback; may switch plans.  Returns current state.

        Switching policy, in priority order:

        1. an explicit ``state_hint`` (the game announces "combat started")
           switches immediately — compiling the state lazily if needed;
        2. cardinality drift beyond ``drift_threshold`` relative to the
           current plan's estimate triggers a re-plan of the current state
           against fresh statistics, then adopts whichever compiled plan is
           now cheapest.
        """
        if self._current_state is None:
            raise RuntimeError("no plan compiled yet")
        choice = self._plans[self._current_state]
        choice.executions += 1
        choice.total_runtime += feedback.runtime
        choice.total_rows += feedback.rows
        self._executions_since_switch += 1

        if feedback.state_hint is not None and feedback.state_hint != self._current_state:
            if feedback.state_hint not in self._plans:
                self.compile_for_state(feedback.state_hint)
            self.switch_to(feedback.state_hint)
            return self._current_state

        if self._executions_since_switch < self.switch_cooldown:
            return self._current_state

        estimate = max(1.0, choice.planned.estimated.cardinality)
        observed = max(1.0, float(feedback.rows))
        drift = max(estimate / observed, observed / estimate)
        if drift > self.drift_threshold:
            self.compile_for_state(self._current_state)
            best_state = min(
                self._plans,
                key=lambda s: self._plans[s].planned.estimated.cost,
            )
            self.switch_to(best_state)
        return self._current_state

    # -- reporting -----------------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Summary used by benchmarks and the debugger."""
        return {
            "current_state": self._current_state,
            "states": {
                state: {
                    "executions": choice.executions,
                    "mean_runtime": choice.mean_runtime,
                    "estimated_cost": choice.planned.estimated.cost,
                    "estimated_rows": choice.planned.estimated.cardinality,
                }
                for state, choice in self._plans.items()
            },
            "switches": self.switch_count,
            "replans": self.replan_count,
        }
