"""Lowering logical plans to physical operator trees.

The physical planner chooses operator implementations:

* a maximal batch-capable subtree (scans, filters, projections, hash and
  nested-loop joins, aggregation with compilable expressions) lowers to
  the columnar batch path (:mod:`repro.engine.operators.batch_ops`),
  bridged back to row dicts at its root by :class:`BatchBridgeOp`,
* selections directly above a base-table scan use an index
  (:class:`IndexRangeScanOp` / :class:`IndexEqualityScanOp`) when one covers
  the predicate columns, keeping the rest as a residual filter — index
  scans win over the batch path because they skip rows entirely,
* joins become hash joins (equi conjuncts), range-probe joins (the
  Figure 2 "units within range" shape), or nested-loop joins; the
  grid-accelerated range-probe join stays on the row path, where it beats
  a batch nested loop,
* everything else lowers one-to-one on the row path, with children again
  free to choose the batch path below.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.engine.algebra import (
    Aggregate,
    Distinct,
    Exchange,
    Fixpoint,
    Join,
    Limit,
    LogicalPlan,
    Project,
    RecursiveRef,
    Select,
    ShardedScan,
    Sort,
    TableScan,
    Union,
    Values,
)
from repro.engine.catalog import Catalog
from repro.engine.errors import PlanError, SchemaError
from repro.engine.table import Table
from repro.engine.optimizer.mqo import SharedScan
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    Literal,
    and_all,
    batch_supported,
    resolve_batch_column,
)
from repro.engine.operators import (
    BatchAggregateOp,
    BatchBridgeOp,
    BatchFilterOp,
    BatchHashJoinOp,
    BatchNestedLoopJoinOp,
    BatchOperator,
    BatchProjectOp,
    BatchTableScanOp,
    BatchValuesOp,
    CrossJoinOp,
    DistinctOp,
    ExchangeOp,
    FilterOp,
    HashAggregateOp,
    HashJoinOp,
    IndexEqualityScanOp,
    IndexProbeJoinOp,
    IndexRangeScanOp,
    LimitOp,
    NestedLoopJoinOp,
    PhysicalOperator,
    ProjectOp,
    RangeProbeJoinOp,
    SortOp,
    TableScanOp,
    UnionOp,
    ValuesOp,
)
from repro.engine.operators.fixpoint import (
    FixpointOp,
    LinearStep,
    RecursiveCell,
    RecursiveSourceOp,
    _DeltaVariant,
)
from repro.engine.schema import Schema
from repro.engine.table import Table

__all__ = ["PhysicalPlanner", "inner_scan_info", "match_band_index"]


def inner_scan_info(
    catalog: Catalog, plan: LogicalPlan
) -> tuple[Table, str | None, list[Expression]] | None:
    """Identify a (possibly filtered) base-table scan on a join's inner side.

    Returns ``(table, scan alias, folded Select predicates)`` when *plan* is
    a ``TableScan`` or a chain of ``Select`` nodes over one — the only
    shapes an index-probing join can bypass, because it reads the inner
    rows straight out of the table.  The folded predicates must be
    re-applied by the caller (as join residuals).
    """
    predicates: list[Expression] = []
    node = plan
    while isinstance(node, Select):
        predicates.append(node.predicate)
        node = node.child
    if not isinstance(node, TableScan) or not catalog.has_table(node.table_name):
        return None
    return catalog.table(node.table_name), node.alias, predicates


def match_band_index(
    catalog: Catalog, plan: LogicalPlan, dimensions: Sequence[tuple[str, Any, Any]]
) -> tuple[Table, str, str | None, list[Expression]] | None:
    """Match a band-join inner side against a registered range-capable index.

    ``dimensions`` are the probe triples from :func:`_extract_range_probe`;
    coverage is decided by :meth:`Table.find_index_covering` (maximal
    probe-column subset, hash indexes excluded — their ``range_search`` is
    a linear fallback, no better than the transient grid).  Returns
    ``(table, index_name, scan alias, folded Select predicates)``.
    """
    info = inner_scan_info(catalog, plan)
    if info is None:
        return None
    table, alias, predicates = info
    covering = table.find_index_covering(
        [column.split(".")[-1] for column, _, _ in dimensions]
    )
    if covering is None:
        return None
    return table, covering[0], alias, predicates


class PhysicalPlanner:
    """Translates optimized logical plans into executable operator trees.

    ``use_indexes=False`` forces pure scan plans; ``use_batch=False``
    forces row-at-a-time plans (used by the equivalence tests and by
    ``benchmarks/bench_columnar.py`` to quantify what each path buys).

    ``index_advisor`` (an
    :class:`~repro.engine.optimizer.adaptive.IndexAdvisor`) receives
    execution-time probe statistics from lowered band joins so it can
    create indexes for join columns that stay hot across ticks.
    """

    def __init__(
        self,
        catalog: Catalog,
        use_indexes: bool = True,
        use_batch: bool = True,
        index_advisor: Any = None,
        use_fixpoint: bool = True,
        fixpoint_incremental: bool = True,
    ):
        self.catalog = catalog
        self.use_indexes = use_indexes
        self.use_batch = use_batch
        self.index_advisor = index_advisor
        #: Semi-naive fixpoint evaluation; ``False`` lowers Fixpoint nodes
        #: to the naive reference loop (full accumulator every round).
        self.use_fixpoint = use_fixpoint
        #: Lower per-table delta variants of fixpoint steps so cached
        #: closures warm-restart after insert-only churn.
        self.fixpoint_incremental = fixpoint_incremental
        #: Binding slots for RecursiveRef leaves, installed while lowering
        #: an enclosing Fixpoint: name -> (cell, positional source names).
        self.recursive_cells: dict[str, tuple[RecursiveCell, Sequence[str] | None]] = {}
        #: Set by the executor while lowering a tick pipeline: an object
        #: with ``row_source(shared_scan)`` / ``batch_source(shared_scan)``
        #: methods resolving :class:`SharedScan` leaves to operators that
        #: serve the tick-shared materialization.  ``None`` outside
        #: pipeline lowering — SharedScan then falls back to lowering its
        #: own source subtree, which is always correct.
        self.shared_lowering: Any = None
        #: Set by the executor when kernel compilation is enabled: an
        #: object with ``lower(plan, planner)`` returning a fused-kernel
        #: operator for fusable pipelines, or ``None`` to continue with
        #: the interpreted paths below.  Checked on every recursive
        #: ``lower`` call, so unfusable roots can still get fused
        #: subtrees.
        self.kernel_lowering: Any = None

    # -- entry point ------------------------------------------------------------------

    def lower(self, plan: LogicalPlan) -> PhysicalOperator:
        if isinstance(plan, ShardedScan):
            # Expand into Select-over-TableScan first so index matching,
            # batching and kernels all apply to the shard slice unchanged.
            return self.lower(plan.to_select())
        if isinstance(plan, Exchange):
            child = self.lower(plan.child)
            return ExchangeOp(
                child,
                plan.axis_column,
                plan.cuts,
                plan.shard_column,
                plan.exclude_shard,
                plan.output_schema(self.catalog),
            )
        if self.kernel_lowering is not None:
            fused = self.kernel_lowering.lower(plan, self)
            if fused is not None:
                return fused
        if self.use_batch:
            batched = self._lower_batch(plan)
            if batched is not None:
                return BatchBridgeOp(batched, plan.output_schema(self.catalog))
        if isinstance(plan, SharedScan):
            if self.shared_lowering is not None:
                source = self.shared_lowering.row_source(plan)
                if source is not None:
                    return source
            return self.lower(plan.source)
        if isinstance(plan, TableScan):
            return self._lower_scan(plan)
        if isinstance(plan, Values):
            return ValuesOp(plan.schema, plan.rows)
        if isinstance(plan, Select):
            return self._lower_select(plan)
        if isinstance(plan, Project):
            child = self.lower(plan.child)
            return ProjectOp(child, plan.projections, plan.output_schema(self.catalog))
        if isinstance(plan, Join):
            return self._lower_join(plan)
        if isinstance(plan, Aggregate):
            child = self.lower(plan.child)
            return HashAggregateOp(
                child, plan.group_by, plan.aggregates, plan.output_schema(self.catalog)
            )
        if isinstance(plan, Sort):
            return SortOp(self.lower(plan.child), plan.keys)
        if isinstance(plan, Limit):
            return LimitOp(self.lower(plan.child), plan.count)
        if isinstance(plan, Distinct):
            return DistinctOp(self.lower(plan.child))
        if isinstance(plan, Union):
            left = self.lower(plan.left)
            right = self.lower(plan.right)
            return UnionOp(left, right, plan.output_schema(self.catalog))
        if isinstance(plan, Fixpoint):
            return self._lower_fixpoint(plan)
        if isinstance(plan, RecursiveRef):
            binding = self.recursive_cells.get(plan.name)
            if binding is None:
                raise PlanError(
                    f"recursive reference {plan.name!r} outside an enclosing Fixpoint"
                )
            cell, source_names = binding
            return RecursiveSourceOp(plan.schema, cell, source_names)
        raise PlanError(f"cannot lower logical node {type(plan).__name__}")

    # -- scans and selections ------------------------------------------------------------

    def _lower_scan(self, plan: TableScan) -> PhysicalOperator:
        table = self.catalog.table(plan.table_name)
        return TableScanOp(table, plan.output_schema(self.catalog), plan.alias)

    def _lower_select(self, plan: Select) -> PhysicalOperator:
        child = plan.child
        if self.use_indexes and isinstance(child, TableScan):
            indexed = self._try_index_scan(child, plan.predicate)
            if indexed is not None:
                return indexed
        lowered = self.lower(child)
        return FilterOp(lowered, plan.predicate)

    def _match_index(
        self, table_name: str, predicate: Expression
    ) -> tuple[str, list[tuple[Any, Any]]] | None:
        """Find an index covering the predicate's constant bounds, if any.

        Pure decision, no operator construction — shared by the row path
        (:meth:`_try_index_scan`) and the batch path (which *declines* when
        an index applies, since an index scan skips rows entirely).
        Returns ``(index_name, per-column (low, high) bounds)``.
        """
        table = self.catalog.table(table_name)
        if not table.indexes:
            return None
        conjuncts = (
            predicate.conjuncts() if isinstance(predicate, BinaryOp) else [predicate]
        )
        # Collect per-column constant bounds: column -> [low, high].
        bounds: dict[str, list[Any]] = {}
        for conjunct in conjuncts:
            parsed = _constant_comparison(conjunct)
            if parsed is None:
                continue
            column, op, value = parsed
            column = column.split(".")[-1]
            entry = bounds.setdefault(column, [None, None])
            if op == "==":
                entry[0] = value if entry[0] is None else max(entry[0], value)
                entry[1] = value if entry[1] is None else min(entry[1], value)
            elif op in (">", ">="):
                entry[0] = value if entry[0] is None else max(entry[0], value)
            elif op in ("<", "<="):
                entry[1] = value if entry[1] is None else min(entry[1], value)
        if not bounds:
            return None
        for index_name, index in table.indexes.items():
            index_cols = [c.split(".")[-1] for c in index.columns]
            if not index_cols or not all(c in bounds for c in index_cols):
                continue
            return index_name, [tuple(bounds[c]) for c in index_cols]
        return None

    def _try_index_scan(self, scan: TableScan, predicate: Expression) -> PhysicalOperator | None:
        """Use a table index for constant equality / range conjuncts."""
        matched = self._match_index(scan.table_name, predicate)
        if matched is None:
            return None
        index_name, index_bounds = matched
        table = self.catalog.table(scan.table_name)
        schema = scan.output_schema(self.catalog)
        scan_op = IndexRangeScanOp(table, schema, index_name, index_bounds, scan.alias)
        # The index may be approximate on ties/borders; always re-check.
        return FilterOp(scan_op, predicate)

    # -- joins ------------------------------------------------------------------------------

    def _lower_join(self, plan: Join) -> PhysicalOperator:
        schema = plan.output_schema(self.catalog)
        if plan.how == "cross" or plan.condition is None:
            left = self.lower(plan.left)
            right = self.lower(plan.right)
            if plan.how == "left":
                return NestedLoopJoinOp(left, right, None, schema, how="left")
            return CrossJoinOp(left, right, schema)
        left_schema = plan.left.output_schema(self.catalog)
        right_schema = plan.right.output_schema(self.catalog)
        conjuncts = (
            plan.condition.conjuncts()
            if isinstance(plan.condition, BinaryOp)
            else [plan.condition]
        )
        equi = _extract_equi_keys(conjuncts, left_schema, right_schema)
        if equi:
            left_keys, right_keys, residual_conjuncts = equi
            residual = and_all(residual_conjuncts) if residual_conjuncts else None
            return HashJoinOp(
                self.lower(plan.left),
                self.lower(plan.right),
                left_keys,
                right_keys,
                schema,
                residual=residual,
                how=plan.how,
            )
        if plan.how == "inner":
            probe = _extract_range_probe(conjuncts, left_schema, right_schema)
            if probe:
                dimensions, residual_conjuncts = probe
                indexed = (
                    self._try_index_probe_join(plan, dimensions, residual_conjuncts, schema)
                    if self.use_indexes
                    else None
                )
                if indexed is not None:
                    return indexed
                residual = and_all(residual_conjuncts) if residual_conjuncts else None
                op = RangeProbeJoinOp(
                    self.lower(plan.left), self.lower(plan.right), dimensions, schema, residual=residual
                )
                self._attach_band_hook(op, plan.right, dimensions)
                return op
        return NestedLoopJoinOp(
            self.lower(plan.left), self.lower(plan.right), plan.condition, schema, how=plan.how
        )

    def _try_index_probe_join(
        self,
        plan: Join,
        dimensions: Sequence[tuple[str, Expression, Expression]],
        residual_conjuncts: Sequence[Expression],
        schema: Schema,
    ) -> PhysicalOperator | None:
        """Lower a band join to a persistent-index probe when one applies.

        The inner side must be a (possibly filtered) base-table scan with a
        registered range-capable index over probe columns; the transient
        grid stays as fallback for every other shape.  A matched index
        always wins: it skips the per-execution rebuild of a grid over the
        whole inner side (``CostModel.band_join_work`` encodes the same
        ordering for plan costing).  This assumes the index is reasonably
        sized for the workload's probe widths — true for advisor-created
        grids (cells sized from observed widths); a grossly mis-sized
        manual index can probe more cells than the transient grid would
        have, and the remedies are re-registering it with a better cell
        size or ``use_indexes=False``.  Folded inner Select predicates
        join the residual, so bypassing the inner operator tree never
        loses a filter.
        """
        matched = match_band_index(self.catalog, plan.right, dimensions)
        if matched is None:
            return None
        table, index_name, alias, folded = matched
        residual_parts = list(residual_conjuncts) + list(folded)
        residual = and_all(residual_parts) if residual_parts else None
        op = IndexProbeJoinOp(
            self.lower(plan.left),
            table,
            index_name,
            dimensions,
            schema,
            residual=residual,
            alias=alias,
        )
        self._attach_band_hook(op, plan.right, dimensions)
        return op

    def _attach_band_hook(
        self,
        op: PhysicalOperator,
        inner_plan: LogicalPlan,
        dimensions: Sequence[tuple[str, Expression, Expression]],
    ) -> None:
        """Wire a lowered band join's probe statistics to the index advisor."""
        if self.index_advisor is None:
            return
        info = inner_scan_info(self.catalog, inner_plan)
        if info is None:
            return
        table, _, _ = info
        try:
            columns = tuple(
                table.schema.resolve(column.split(".")[-1]) for column, _, _ in dimensions
            )
        except SchemaError:
            return
        op.stats_hook = self.index_advisor.make_hook(table.name, columns)

    # -- batch (columnar) lowering ----------------------------------------------------

    def _lower_batch(self, plan: LogicalPlan) -> BatchOperator | None:
        """Lower *plan* to a batch operator tree, or ``None`` to stay on rows.

        The decision is made entirely at plan time: every expression is
        checked with :func:`batch_supported` against the child's *batch*
        column names (which equal the row dicts' keys), so a chosen batch
        plan cannot fail to compile at runtime.  Nodes that decline —
        index-friendly selections, range-probe joins, sorts, limits — keep
        the whole subtree above them on the row path, while their children
        may still batch independently via :meth:`lower`.
        """
        if isinstance(plan, SharedScan):
            if self.shared_lowering is not None:
                source = self.shared_lowering.batch_source(plan)
                if source is not None:
                    return source
            return self._lower_batch(plan.source)
        if isinstance(plan, TableScan):
            table = self.catalog.table(plan.table_name)
            return BatchTableScanOp(table, plan.output_schema(self.catalog), plan.alias)
        if isinstance(plan, Values):
            schema = plan.schema
            wanted = set(schema.names)
            if all(set(row) == wanted for row in plan.rows):
                return BatchValuesOp(schema, plan.rows)
            return None
        if isinstance(plan, Select):
            # An index scan skips rows entirely; prefer it over batching.
            if self.use_indexes and isinstance(plan.child, TableScan):
                if self._match_index(plan.child.table_name, plan.predicate) is not None:
                    return None
            child = self._lower_batch(plan.child)
            if child is None or not batch_supported(plan.predicate, child.names):
                return None
            return BatchFilterOp(child, plan.predicate)
        if isinstance(plan, Project):
            child = self._lower_batch(plan.child)
            if child is None:
                return None
            if not all(batch_supported(e, child.names) for _, e in plan.projections):
                return None
            return BatchProjectOp(child, plan.projections, plan.output_schema(self.catalog))
        if isinstance(plan, Join):
            return self._lower_batch_join(plan)
        if isinstance(plan, Aggregate):
            return self._lower_batch_aggregate(plan)
        return None

    def _lower_batch_join(self, plan: Join) -> BatchOperator | None:
        left = self._lower_batch(plan.left)
        right = self._lower_batch(plan.right)
        if left is None or right is None:
            return None
        schema = plan.output_schema(self.catalog)
        if plan.how == "cross" or plan.condition is None:
            return BatchNestedLoopJoinOp(left, right, None, schema, how=plan.how if plan.how == "left" else "inner")
        left_schema = plan.left.output_schema(self.catalog)
        right_schema = plan.right.output_schema(self.catalog)
        conjuncts = (
            plan.condition.conjuncts()
            if isinstance(plan.condition, BinaryOp)
            else [plan.condition]
        )
        combined_names = left.names + right.names
        equi = _extract_equi_keys(conjuncts, left_schema, right_schema)
        if equi:
            left_keys, right_keys, residual_conjuncts = equi
            if not all(batch_supported(k, left.names) for k in left_keys):
                return None
            if not all(batch_supported(k, right.names) for k in right_keys):
                return None
            residual = and_all(residual_conjuncts) if residual_conjuncts else None
            if residual is not None and not batch_supported(residual, combined_names):
                return None
            return BatchHashJoinOp(
                left, right, left_keys, right_keys, schema, residual=residual, how=plan.how
            )
        if plan.how == "inner" and _extract_range_probe(conjuncts, left_schema, right_schema):
            # The grid-accelerated RangeProbeJoinOp (row path) beats a
            # batch nested loop on the Figure-2 band-join shape.
            return None
        if not batch_supported(plan.condition, combined_names):
            return None
        return BatchNestedLoopJoinOp(left, right, plan.condition, schema, how=plan.how)

    def _lower_batch_aggregate(self, plan: Aggregate) -> BatchOperator | None:
        child = self._lower_batch(plan.child)
        if child is None:
            return None
        try:
            child_schema = plan.child.output_schema(self.catalog)
            resolved = [child_schema.resolve(g) for g in plan.group_by]
        except SchemaError:
            return None
        group_columns = []
        for name in resolved:
            batch_name = resolve_batch_column(name, child.names)
            if batch_name is None:
                return None
            group_columns.append(batch_name)
        for spec in plan.aggregates:
            if spec.argument is not None and not batch_supported(spec.argument, child.names):
                return None
        return BatchAggregateOp(
            child, plan.group_by, group_columns, plan.aggregates, plan.output_schema(self.catalog)
        )


    # -- fixpoint (recursive) lowering -------------------------------------------------

    def _lower_fixpoint(self, plan: Fixpoint) -> PhysicalOperator:
        """Lower a Fixpoint: bind its RecursiveRef slots, specialize the step.

        The accumulator cell is installed under
        :attr:`RecursiveRef.ACCUMULATOR` while the step (and its delta
        variants) lower, so nested ``RecursiveRef`` leaves resolve to
        sources reading the current frontier.  The step body itself goes
        through the ordinary :meth:`lower`, which is what lets batch
        kernels, index scans and MQO shared sources apply inside a
        recursive plan.
        """
        schema = plan.output_schema(self.catalog)  # validates base/step alignment
        base_op = self.lower(plan.base)
        accum_cell = RecursiveCell(RecursiveRef.ACCUMULATOR)
        saved = self.recursive_cells.get(RecursiveRef.ACCUMULATOR)
        self.recursive_cells[RecursiveRef.ACCUMULATOR] = (accum_cell, schema.names)
        try:
            linear = self._match_linear_step(plan, schema)
            step_op = self.lower(plan.step) if linear is None else None
            variants = (
                self._lower_delta_variants(plan)
                if self.use_fixpoint and self.fixpoint_incremental
                else []
            )
        finally:
            if saved is None:
                self.recursive_cells.pop(RecursiveRef.ACCUMULATOR, None)
            else:
                self.recursive_cells[RecursiveRef.ACCUMULATOR] = saved
        base_tables = [
            self.catalog.table(name)
            for name in sorted(plan.base.referenced_tables())
            if self.catalog.has_table(name)
        ]
        step_tables = [
            self.catalog.table(name)
            for name in sorted(plan.step.referenced_tables())
            if self.catalog.has_table(name)
        ]
        return FixpointOp(
            schema,
            base_op,
            accum_cell,
            step_op,
            linear,
            semi_naive=self.use_fixpoint,
            max_rounds=plan.max_rounds,
            distinct_on=plan.distinct_on,
            base_tables=base_tables,
            step_tables=step_tables,
            delta_variants=variants,
            warm_restart=self.fixpoint_incremental,
        )

    def _match_linear_step(
        self, plan: Fixpoint, schema: Schema
    ) -> LinearStep | None:
        """Specialize the linear-recursion shape ``rec ⋈ build``.

        Matches ``Project?(Select*(Join(rec-side, build-side)))`` where
        exactly one join input is the (possibly Select-wrapped) accumulator
        reference and the join has equi keys.  The build side is lowered
        once and hashed per execution; every round then probes it with the
        frontier instead of re-executing the step subtree.  ``None`` keeps
        the generic re-execution path (still correct, just not amortized).
        """
        node: LogicalPlan = plan.step
        projections: Sequence[tuple[str, Expression]] | None = None
        outer_filters: list[Expression] = []
        if isinstance(node, Project):
            projections = node.projections
            node = node.child
        while isinstance(node, Select):
            outer_filters.extend(_conjuncts(node.predicate))
            node = node.child
        if not isinstance(node, Join) or node.how != "inner" or node.condition is None:
            return None

        def unwrap(side: LogicalPlan) -> tuple[LogicalPlan, list[Expression]]:
            filters: list[Expression] = []
            while isinstance(side, Select):
                filters.extend(_conjuncts(side.predicate))
                side = side.child
            return side, filters

        left_leaf, left_filters = unwrap(node.left)
        right_leaf, right_filters = unwrap(node.right)

        def is_accum(leaf: LogicalPlan) -> bool:
            return (
                isinstance(leaf, RecursiveRef)
                and leaf.name == RecursiveRef.ACCUMULATOR
                and tuple(leaf.schema.names) == tuple(schema.names)
            )

        rec_left = is_accum(left_leaf)
        rec_right = is_accum(right_leaf)
        if rec_left == rec_right:
            return None  # need exactly one recursive input
        build_plan = node.right if rec_left else node.left
        if any(isinstance(n, RecursiveRef) for n in build_plan.walk()):
            return None  # non-linear recursion: fall back to re-execution
        rec_filters = left_filters if rec_left else right_filters

        try:
            left_schema = node.left.output_schema(self.catalog)
            right_schema = node.right.output_schema(self.catalog)
        except (PlanError, SchemaError):
            return None
        equi = _extract_equi_keys(
            _conjuncts(node.condition), left_schema, right_schema
        )
        if equi is None:
            return None
        left_keys, right_keys, residual = equi
        rec_keys, build_keys = (
            (left_keys, right_keys) if rec_left else (right_keys, left_keys)
        )
        if projections is None:
            combined = left_schema.concat(right_schema)
            projections = [(name, ColumnRef(name)) for name in combined.names]
        build_op = self.lower(build_plan)
        return LinearStep(
            build_op,
            rec_keys,
            build_keys,
            projections,
            rec_filters=rec_filters,
            residual=list(residual) + outer_filters,
            rec_side_left=rec_left,
            build_delta=self._lower_build_delta(build_plan),
        )

    def _lower_build_delta(
        self, build_plan: LogicalPlan
    ) -> tuple[Table, RecursiveCell, PhysicalOperator] | None:
        """A delta variant of a linear step's build side, if it is derived
        from exactly one table scanned exactly once.  Warm restarts then
        append just the inserted rows to the build hash instead of
        re-hashing the whole side (``LinearStep.refresh``)."""
        if not (self.use_fixpoint and self.fixpoint_incremental):
            return None
        names = [
            name
            for name in sorted(build_plan.referenced_tables())
            if self.catalog.has_table(name)
        ]
        if len(names) != 1:
            return None
        name = names[0]
        occurrences = sum(
            1
            for n in build_plan.walk()
            if isinstance(n, TableScan) and n.table_name == name
        )
        if occurrences != 1:
            return None
        table = self.catalog.table(name)
        cell_name = f"__builddelta__:{name}"
        cell = RecursiveCell(cell_name)
        replaced = _replace_scan(build_plan, name, cell_name, self.catalog)
        if replaced is None:
            return None
        self.recursive_cells[cell_name] = (cell, table.schema.names)
        try:
            op = self.lower(replaced)
        finally:
            self.recursive_cells.pop(cell_name, None)
        return (table, cell, op)

    def _lower_delta_variants(self, plan: Fixpoint) -> list[_DeltaVariant]:
        """Per-table delta variants of the step for incremental re-closure.

        For each base table the step scans exactly once, lower a copy of
        the step with that scan replaced by a delta source; after
        insert-only churn the FixpointOp evaluates the variant with just
        the inserted rows against the cached closure.  Tables scanned more
        than once are skipped (the bilinear delta rule would need cross
        terms), as are scans hidden behind shared materializations.
        """
        variants: list[_DeltaVariant] = []
        for name in sorted(plan.step.referenced_tables()):
            if not self.catalog.has_table(name):
                continue
            occurrences = sum(
                1
                for n in plan.step.walk()
                if isinstance(n, TableScan) and n.table_name == name
            )
            if occurrences != 1:
                continue
            table = self.catalog.table(name)
            cell_name = f"__delta__:{name}"
            cell = RecursiveCell(cell_name)
            replaced = _replace_scan(plan.step, name, cell_name, self.catalog)
            if replaced is None:
                continue
            self.recursive_cells[cell_name] = (cell, table.schema.names)
            try:
                op = self.lower(replaced)
            finally:
                self.recursive_cells.pop(cell_name, None)
            variants.append(_DeltaVariant(table, cell, op))
        return variants


def _conjuncts(predicate: Expression) -> list[Expression]:
    if isinstance(predicate, BinaryOp):
        return list(predicate.conjuncts())
    return [predicate]


def _replace_scan(
    plan: LogicalPlan, table_name: str, cell_name: str, catalog: Catalog
) -> LogicalPlan | None:
    """Copy *plan* with the scan of *table_name* replaced by a delta ref.

    Returns ``None`` when no direct scan was found (e.g. the scan sits
    behind a SharedScan, whose children are deliberately opaque).
    """
    if isinstance(plan, TableScan) and plan.table_name == table_name:
        return RecursiveRef(plan.output_schema(catalog), name=cell_name)
    children = plan.children()
    if not children:
        return None
    new_children: list[LogicalPlan] = []
    found = False
    for child in children:
        replaced = _replace_scan(child, table_name, cell_name, catalog)
        if replaced is None:
            new_children.append(child)
        else:
            new_children.append(replaced)
            found = True
    if not found:
        return None
    return plan.with_children(new_children)


# -- condition analysis helpers ------------------------------------------------------------


def _constant_comparison(expr: Expression) -> tuple[str, str, Any] | None:
    """Match ``col <op> literal`` / ``literal <op> col``; return (col, op, value)."""
    if not isinstance(expr, BinaryOp) or expr.op not in ("==", "<", "<=", ">", ">="):
        return None
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        return expr.right.name, flipped[expr.op], expr.left.value
    return None


def _side_of(column: str, left_schema: Schema, right_schema: Schema) -> str | None:
    """Which join side produces *column*: 'left', 'right', or None/ambiguous."""
    in_left = column in left_schema
    in_right = column in right_schema
    if in_left and not in_right:
        return "left"
    if in_right and not in_left:
        return "right"
    return None


def _expression_side(expr: Expression, left_schema: Schema, right_schema: Schema) -> str | None:
    """Which side all columns of *expr* come from ('left'/'right'), or None."""
    sides = set()
    for column in expr.columns():
        side = _side_of(column, left_schema, right_schema)
        if side is None:
            return None
        sides.add(side)
    if len(sides) == 1:
        return sides.pop()
    if not sides:
        return "const"
    return None


def _extract_equi_keys(
    conjuncts: Sequence[Expression], left_schema: Schema, right_schema: Schema
) -> tuple[list[Expression], list[Expression], list[Expression]] | None:
    """Split conjuncts into equi-join keys and residual predicates."""
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual: list[Expression] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, BinaryOp) and conjunct.op == "==":
            lhs_side = _expression_side(conjunct.left, left_schema, right_schema)
            rhs_side = _expression_side(conjunct.right, left_schema, right_schema)
            if lhs_side == "left" and rhs_side == "right":
                left_keys.append(conjunct.left)
                right_keys.append(conjunct.right)
                continue
            if lhs_side == "right" and rhs_side == "left":
                left_keys.append(conjunct.right)
                right_keys.append(conjunct.left)
                continue
        residual.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, residual


def _extract_range_probe(
    conjuncts: Sequence[Expression], left_schema: Schema, right_schema: Schema
) -> tuple[list[tuple[str, Expression, Expression]], list[Expression]] | None:
    """Match the band-join shape: per right column, a lower and upper bound
    expression computed from the left row.

    The probe operators check the extracted bounds *inclusively*, which is
    exact for ``<=`` / ``>=`` conjuncts.  A strict conjunct (``<`` / ``>``)
    still provides a usable bound — the inclusive check merely
    over-approximates — but it is additionally kept as a residual so the
    strict comparison is re-applied to every candidate.
    """
    lows: dict[str, Expression] = {}
    highs: dict[str, Expression] = {}
    residual: list[Expression] = []
    #: Consumed conjuncts as ``(conjunct, right column, normalized op)``.
    consumed: list[tuple[Expression, str, str]] = []
    for conjunct in conjuncts:
        matched = False
        if isinstance(conjunct, BinaryOp) and conjunct.op in ("<", "<=", ">", ">="):
            for col_expr, other, op in (
                (conjunct.left, conjunct.right, conjunct.op),
                (conjunct.right, conjunct.left, {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[conjunct.op]),
            ):
                if not isinstance(col_expr, ColumnRef):
                    continue
                if _side_of(col_expr.name, left_schema, right_schema) != "right":
                    continue
                other_side = _expression_side(other, left_schema, right_schema)
                if other_side not in ("left", "const"):
                    continue
                column = col_expr.name
                if op in (">", ">="):
                    if column not in lows:
                        lows[column] = other
                        consumed.append((conjunct, column, op))
                        matched = True
                else:
                    if column not in highs:
                        highs[column] = other
                        consumed.append((conjunct, column, op))
                        matched = True
                break
        if not matched:
            residual.append(conjunct)
    dimensions = []
    for column in lows:
        if column in highs:
            dimensions.append((column, lows[column], highs[column]))
    if not dimensions:
        return None
    paired_columns = {c for c, _, _ in dimensions}
    for conjunct, column, op in consumed:
        if column not in paired_columns:
            # The bound did not pair up: keep the whole conjunct as residual.
            residual.append(conjunct)
        elif op in ("<", ">"):
            # Strict bound: the probe's inclusive range over-approximates,
            # so the conjunct must be re-checked on every candidate.
            residual.append(conjunct)
    return dimensions, residual
