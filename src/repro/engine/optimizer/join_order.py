"""Join order enumeration.

Section 4.1: "The size of intermediate tables can vary dramatically between
states … and this may significantly change the best join ordering."  The
enumerator extracts the *join graph* from a tree of inner joins (relations
plus conjunctive predicates), then searches orders:

* exhaustive dynamic programming over connected subsets for up to
  ``DP_RELATION_LIMIT`` relations (SGL queries join a handful of tables),
* a greedy smallest-intermediate-first heuristic beyond that.

The output is a new join tree whose cost is evaluated with the supplied
:class:`~repro.engine.optimizer.cost.CostModel`; because the cost model
reads *current* statistics, re-running the enumerator under a different
workload state can produce a different order — which is what the adaptive
optimizer (experiment E4) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.engine.algebra import Join, LogicalPlan, Select
from repro.engine.catalog import Catalog
from repro.engine.expressions import BinaryOp, Expression, and_all
from repro.engine.optimizer.cost import CostModel

__all__ = ["JoinGraph", "extract_join_graph", "order_joins", "reorder_joins"]

#: Maximum number of relations for exhaustive DP enumeration.
DP_RELATION_LIMIT = 8


@dataclass
class JoinGraph:
    """A set of relations (plan subtrees) and the predicates connecting them.

    The flattened form of a tree of inner joins: ``relations`` are the join
    inputs (scans or arbitrary non-join subtrees) and ``predicates`` the
    conjuncts of all join conditions and selections that mention more than
    one relation.  The enumerator re-assembles trees from this graph in
    different orders and attaches each predicate at the lowest node where
    all its referenced relations are present.
    """

    relations: list[LogicalPlan] = field(default_factory=list)
    predicates: list[Expression] = field(default_factory=list)

    def predicate_relations(self, predicate: Expression, catalog: Catalog) -> set[int]:
        """Indexes of the relations whose columns the predicate references."""
        referenced = predicate.columns()
        out: set[int] = set()
        for i, relation in enumerate(self.relations):
            try:
                schema = relation.output_schema(catalog)
            except Exception:
                continue
            names = set(schema.names)
            unqualified = {c.unqualified_name for c in schema}
            for column in referenced:
                if column in names or ("." not in column and column in unqualified):
                    out.add(i)
                    break
        return out


def extract_join_graph(plan: LogicalPlan) -> JoinGraph | None:
    """Flatten a tree of inner/cross joins (with interleaved selections).

    Returns ``None`` when the plan is not a pure inner-join tree (outer
    joins, aggregates below joins, etc.), in which case the original order
    is kept.
    """
    graph = JoinGraph()

    def visit(node: LogicalPlan) -> bool:
        if isinstance(node, Join) and node.how in ("inner", "cross"):
            if not visit(node.left):
                return False
            if not visit(node.right):
                return False
            if node.condition is not None:
                if isinstance(node.condition, BinaryOp):
                    graph.predicates.extend(node.condition.conjuncts())
                else:
                    graph.predicates.append(node.condition)
            return True
        if isinstance(node, Select):
            # Keep per-relation selections attached to their relation.
            graph.relations.append(node)
            return True
        graph.relations.append(node)
        return True

    if not isinstance(plan, Join) or plan.how not in ("inner", "cross"):
        return None
    if not visit(plan):
        return None
    if len(graph.relations) < 2:
        return None
    return graph


def _build_join(
    left: LogicalPlan,
    right: LogicalPlan,
    left_set: frozenset[int],
    right_set: frozenset[int],
    graph: JoinGraph,
    catalog: Catalog,
    used: set[int],
) -> LogicalPlan:
    """Join two subplans, attaching every not-yet-used predicate that is
    fully covered by the combined relation set."""
    combined = left_set | right_set
    applicable: list[Expression] = []
    for i, predicate in enumerate(graph.predicates):
        if i in used:
            continue
        relations = graph.predicate_relations(predicate, catalog)
        if relations and relations <= combined:
            applicable.append(predicate)
            used.add(i)
    condition = and_all(applicable) if applicable else None
    how = "inner" if applicable else "cross"
    return Join(left, right, condition, how)


def order_joins(graph: JoinGraph, catalog: Catalog, cost_model: CostModel) -> LogicalPlan:
    """Pick a join order for *graph* and return the resulting join tree."""
    n = len(graph.relations)
    if n <= DP_RELATION_LIMIT:
        return _dp_order(graph, catalog, cost_model)
    return _greedy_order(graph, catalog, cost_model)


def _dp_order(graph: JoinGraph, catalog: Catalog, cost_model: CostModel) -> LogicalPlan:
    """Exhaustive DP over subsets (left-deep and bushy) minimizing cost."""
    n = len(graph.relations)
    best: dict[frozenset[int], tuple[float, LogicalPlan, set[int]]] = {}
    for i, relation in enumerate(graph.relations):
        key = frozenset([i])
        best[key] = (cost_model.cost(relation).cost, relation, set())
    for size in range(2, n + 1):
        for subset in map(frozenset, combinations(range(n), size)):
            candidates: list[tuple[float, LogicalPlan, set[int]]] = []
            seen_splits: set[frozenset[int]] = set()
            for left_size in range(1, size):
                for left_tuple in combinations(sorted(subset), left_size):
                    left_set = frozenset(left_tuple)
                    if left_set in seen_splits:
                        continue
                    right_set = subset - left_set
                    seen_splits.add(left_set)
                    seen_splits.add(right_set)
                    if left_set not in best or right_set not in best:
                        continue
                    left_cost, left_plan, left_used = best[left_set]
                    right_cost, right_plan, right_used = best[right_set]
                    used = set(left_used) | set(right_used)
                    joined = _build_join(
                        left_plan, right_plan, left_set, right_set, graph, catalog, used
                    )
                    total = cost_model.cost(joined).cost
                    candidates.append((total, joined, used))
            if candidates:
                best[subset] = min(candidates, key=lambda c: c[0])
    full = frozenset(range(n))
    _, plan, used = best[full]
    return _attach_leftover_predicates(plan, graph, used)


def _greedy_order(graph: JoinGraph, catalog: Catalog, cost_model: CostModel) -> LogicalPlan:
    """Greedy: repeatedly join the pair with the cheapest estimated result."""
    n = len(graph.relations)
    parts: dict[frozenset[int], LogicalPlan] = {
        frozenset([i]): rel for i, rel in enumerate(graph.relations)
    }
    used: set[int] = set()
    while len(parts) > 1:
        best_key: tuple[frozenset[int], frozenset[int]] | None = None
        best_plan: LogicalPlan | None = None
        best_cost = float("inf")
        best_used: set[int] = set()
        keys = list(parts)
        for a, b in combinations(keys, 2):
            trial_used = set(used)
            joined = _build_join(parts[a], parts[b], a, b, graph, catalog, trial_used)
            cost = cost_model.cost(joined).cost
            if cost < best_cost:
                best_cost = cost
                best_key = (a, b)
                best_plan = joined
                best_used = trial_used
        assert best_key is not None and best_plan is not None
        a, b = best_key
        del parts[a]
        del parts[b]
        parts[a | b] = best_plan
        used = best_used
    (plan,) = parts.values()
    return _attach_leftover_predicates(plan, graph, used)


def _attach_leftover_predicates(plan: LogicalPlan, graph: JoinGraph, used: set[int]) -> LogicalPlan:
    leftovers = [p for i, p in enumerate(graph.predicates) if i not in used]
    if leftovers:
        return Select(plan, and_all(leftovers))
    return plan


def reorder_joins(plan: LogicalPlan, catalog: Catalog, cost_model: CostModel) -> LogicalPlan:
    """Recursively reorder every maximal inner-join subtree of *plan*."""

    def rewrite(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Join) and node.how in ("inner", "cross"):
            graph = extract_join_graph(node)
            if graph is not None:
                relations = [rewrite_children_only(r) for r in graph.relations]
                graph = JoinGraph(relations, graph.predicates)
                return order_joins(graph, catalog, cost_model)
        return rewrite_children_only(node)

    def rewrite_children_only(node: LogicalPlan) -> LogicalPlan:
        children = node.children()
        if not children:
            return node
        new_children = [rewrite(c) for c in children]
        if all(a is b for a, b in zip(new_children, children)):
            return node
        return node.with_children(new_children)

    return rewrite(plan)
