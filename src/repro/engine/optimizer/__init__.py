"""Query optimization: rewrites, join ordering, costing, physical planning
and adaptive multi-plan selection."""

from repro.engine.optimizer.adaptive import (
    AdaptiveQueryManager,
    ExecutionFeedback,
    IndexAdvisor,
    PlanChoice,
)
from repro.engine.optimizer.cost import CostModel, PlanCost
from repro.engine.optimizer.join_order import extract_join_graph, order_joins, reorder_joins
from repro.engine.optimizer.mqo import (
    SharedScan,
    SharedSubplan,
    TickEntry,
    TickPlan,
    build_tick_plan,
    fingerprint_plan,
)
from repro.engine.optimizer.physical import PhysicalPlanner
from repro.engine.optimizer.planner import PlannedQuery, Planner
from repro.engine.optimizer.rules import (
    apply_standard_rewrites,
    merge_selections,
    push_down_selections,
    split_conjunctions,
)

__all__ = [
    "AdaptiveQueryManager",
    "ExecutionFeedback",
    "IndexAdvisor",
    "PlanChoice",
    "CostModel",
    "PlanCost",
    "extract_join_graph",
    "order_joins",
    "reorder_joins",
    "SharedScan",
    "SharedSubplan",
    "TickEntry",
    "TickPlan",
    "build_tick_plan",
    "fingerprint_plan",
    "PhysicalPlanner",
    "PlannedQuery",
    "Planner",
    "apply_standard_rewrites",
    "merge_selections",
    "push_down_selections",
    "split_conjunctions",
]
