"""Multi-query optimization: tick-wide shared-subplan pipelines.

The paper's tick loop executes *every* enabled script's effect queries,
every tick, over the same frozen state tables (Section 4.1).  Compiled
independently, N scripts over one class produce N plans that re-scan,
re-filter and re-join the same relations — the classic multi-query
optimization setting, with the unusual advantage that the whole query set
is known up front and repeats identically each tick.

This module finds the sharing.  Given one tick's logical plans it

1. **fingerprints** every subplan in a canonical form — ``Select`` chains
   are folded and their conjuncts sorted, scan aliases are numbered by
   traversal position so two scripts that name their loop variable
   differently still match — then
2. picks the subplans that occur at least twice (across queries *or*
   within one: an accum-loop's contribution sites re-derive the same join
   per assignment), and
3. rewrites every consumer, replacing each maximal shared subtree with a
   :class:`SharedScan` leaf that reads the subplan's once-per-tick
   materialized result, producing a DAG: shared subplans may themselves
   consume smaller shared subplans.

The result is purely logical; the :class:`~repro.engine.executor.Executor`
lowers it (``prepare_tick``) and evaluates each shared node at most once
per tick (``execute_tick``), serving consumers from the materialization —
as a :class:`~repro.engine.batch.ColumnBatch` when the shared subplan runs
on the columnar path, so consumers on the batch path share column lists
without copying a single row.

Sharing is transparent to result rows *and* row order: a materialized
subtree replays exactly the sequence the in-line subtree would have
produced, so order-sensitive consumers (``first``/``last``/``collect``
effects, transactional queries) may consume shared results freely — only
the *effect-sink* fusion (see :mod:`repro.engine.operators.shared`) is
restricted to order-insensitive combinators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.engine.algebra import (
    Aggregate,
    Distinct,
    Fixpoint,
    Join,
    Limit,
    LogicalPlan,
    Project,
    RecursiveRef,
    Select,
    Sort,
    TableScan,
    Union,
    Values,
)
from repro.engine.catalog import Catalog
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Conditional,
    Expression,
    FunctionCall,
    Literal,
    SetLiteral,
    UnaryOp,
    Variable,
)
from repro.engine.schema import Schema

__all__ = [
    "SharedScan",
    "SharedSubplan",
    "TickEntry",
    "TickPlan",
    "fingerprint_plan",
    "build_tick_plan",
]


class SharedScan(LogicalPlan):
    """A leaf that reads the materialized result of a tick-shared subplan.

    ``source`` is this *consumer's own* equivalent subtree — it supplies
    the output schema (consumer-side column names) and a correct fallback
    when no shared materialization is available, so a plan containing
    ``SharedScan`` nodes remains executable by any planner.

    ``alias_renames`` maps the representative subplan's scan aliases to
    this consumer's aliases (only the differing ones); the physical source
    operator applies the corresponding column renames when serving rows or
    batches.
    """

    def __init__(
        self,
        fingerprint: str,
        source: LogicalPlan,
        alias_renames: Mapping[str, str] | None = None,
    ):
        self.fingerprint = fingerprint
        self.source = source
        self.alias_renames = dict(alias_renames or {})

    def children(self) -> tuple[LogicalPlan, ...]:
        # Opaque to rewrites: the shared subtree was already optimized
        # before sharing was decided, and rewriting *through* the boundary
        # would break the fingerprint ↔ materialization correspondence.
        return ()

    def walk(self) -> Iterable[LogicalPlan]:
        # Include the source so referenced_tables() stays accurate for
        # cache-invalidation decisions made over rewritten plans.
        yield self
        yield from self.source.walk()

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.source.output_schema(catalog)

    def node_label(self) -> str:
        return f"SharedScan({self.fingerprint[:24]}…)" if len(
            self.fingerprint
        ) > 24 else f"SharedScan({self.fingerprint})"


# ------------------------------------------------------------------------------------
# canonical fingerprints
# ------------------------------------------------------------------------------------


def _canon_expr(expr: Expression, alias_tokens: Mapping[str, str]) -> str:
    """Render *expr* canonically, numbering scan aliases per *alias_tokens*."""
    if isinstance(expr, ColumnRef):
        head, dot, tail = expr.name.partition(".")
        if dot and head in alias_tokens:
            return f"{alias_tokens[head]}.{tail}"
        return expr.name
    if isinstance(expr, Literal):
        return f"lit:{expr.value!r}"
    if isinstance(expr, Variable):
        return f"var:{expr.name}"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}({_canon_expr(expr.operand, alias_tokens)})"
    if isinstance(expr, BinaryOp):
        left = _canon_expr(expr.left, alias_tokens)
        right = _canon_expr(expr.right, alias_tokens)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_canon_expr(a, alias_tokens) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Conditional):
        return (
            f"if({_canon_expr(expr.condition, alias_tokens)}, "
            f"{_canon_expr(expr.if_true, alias_tokens)}, "
            f"{_canon_expr(expr.if_false, alias_tokens)})"
        )
    if isinstance(expr, SetLiteral):
        elements = sorted(_canon_expr(e, alias_tokens) for e in expr.elements)
        return "{" + ", ".join(elements) + "}"
    return repr(expr)


def _canon_conjuncts(
    predicates: Sequence[Expression], alias_tokens: Mapping[str, str]
) -> str:
    """Split, canonicalize and sort AND-conjuncts (conjunction order is
    semantically free for the null-safe expression language, and both
    filter paths already apply conjuncts in rewrite-dependent order)."""
    conjuncts: list[str] = []
    for predicate in predicates:
        parts = (
            predicate.conjuncts()
            if isinstance(predicate, BinaryOp)
            else [predicate]
        )
        conjuncts.extend(_canon_expr(p, alias_tokens) for p in parts)
    return " & ".join(sorted(conjuncts))


def _fingerprint(plan: LogicalPlan, aliases: list[str]) -> str:
    """Recursive canonical form; appends scan aliases to *aliases* in
    deterministic (children-first, left-to-right) traversal order."""

    def tokens() -> dict[str, str]:
        return {alias: f"@{i}" for i, alias in enumerate(aliases)}

    if isinstance(plan, TableScan):
        if plan.alias and plan.alias not in aliases:
            aliases.append(plan.alias)
        token = tokens().get(plan.alias, "") if plan.alias else ""
        return f"scan({plan.table_name} as {token})"
    if isinstance(plan, Values):
        # Inline relations fingerprint by identity: sharing only when two
        # plans literally reference the same Values object.
        return f"values#{id(plan)}"
    if isinstance(plan, SharedScan):
        return f"shared({plan.fingerprint})"
    if isinstance(plan, Select):
        predicates: list[Expression] = []
        node: LogicalPlan = plan
        while isinstance(node, Select):
            predicates.append(node.predicate)
            node = node.child
        child = _fingerprint(node, aliases)
        return f"σ[{_canon_conjuncts(predicates, tokens())}]({child})"
    if isinstance(plan, Project):
        child = _fingerprint(plan.child, aliases)
        mapping = tokens()
        cols = ", ".join(
            f"{name}={_canon_expr(expr, mapping)}" for name, expr in plan.projections
        )
        types = (
            "|" + ",".join(f"{k}:{v}" for k, v in sorted(plan.types.items(), key=lambda kv: kv[0]))
            if plan.types
            else ""
        )
        return f"π[{cols}{types}]({child})"
    if isinstance(plan, Join):
        left = _fingerprint(plan.left, aliases)
        right = _fingerprint(plan.right, aliases)
        condition = (
            _canon_conjuncts([plan.condition], tokens())
            if plan.condition is not None
            else ""
        )
        return f"⋈[{plan.how}|{condition}]({left}, {right})"
    if isinstance(plan, Aggregate):
        child = _fingerprint(plan.child, aliases)
        mapping = tokens()

        def canon_column(name: str) -> str:
            head, dot, tail = name.partition(".")
            if dot and head in mapping:
                return f"{mapping[head]}.{tail}"
            return name

        groups = ", ".join(canon_column(g) for g in plan.group_by)
        aggs = ", ".join(
            f"{spec.name}={spec.func}("
            + ("*" if spec.argument is None else _canon_expr(spec.argument, mapping))
            + ")"
            for spec in plan.aggregates
        )
        return f"γ[{groups}|{aggs}]({child})"
    if isinstance(plan, Sort):
        child = _fingerprint(plan.child, aliases)
        mapping = tokens()
        keys = ", ".join(
            f"{_canon_expr(k.expression, mapping)}{'' if k.ascending else ' desc'}"
            for k in plan.keys
        )
        return f"sort[{keys}]({child})"
    if isinstance(plan, Limit):
        return f"limit[{plan.count}]({_fingerprint(plan.child, aliases)})"
    if isinstance(plan, Distinct):
        return f"distinct({_fingerprint(plan.child, aliases)})"
    if isinstance(plan, Union):
        left = _fingerprint(plan.left, aliases)
        right = _fingerprint(plan.right, aliases)
        return f"∪({left}, {right})"
    if isinstance(plan, Fixpoint):
        base = _fingerprint(plan.base, aliases)
        step = _fingerprint(plan.step, aliases)
        cap = "∞" if plan.max_rounds is None else str(plan.max_rounds)
        key = ",".join(plan.distinct_on)
        return f"μ[{cap}|{key}]({base}, {step})"
    if isinstance(plan, RecursiveRef):
        # The accumulator reference is positional inside its Fixpoint —
        # its name and schema are the whole identity.
        return f"rec[{plan.name}|{','.join(plan.schema.names)}]"
    # Unknown node type: never shared, never matched.
    return f"opaque#{id(plan)}"


def fingerprint_plan(plan: LogicalPlan) -> tuple[str, tuple[str, ...]]:
    """Canonical fingerprint of *plan* plus its scan aliases in traversal
    order.  Two subplans with equal fingerprints compute the same relation
    (same rows, same row order) modulo renaming scan aliases positionally.
    """
    aliases: list[str] = []
    fp = _fingerprint(plan, aliases)
    return fp, tuple(aliases)


# ------------------------------------------------------------------------------------
# the tick-level shared DAG
# ------------------------------------------------------------------------------------


@dataclass
class SharedSubplan:
    """One shared node of the tick DAG."""

    fingerprint: str
    #: Representative subtree, itself rewritten against smaller shared
    #: nodes (nested ``SharedScan`` leaves), ready for lowering.
    plan: LogicalPlan
    #: The representative's scan aliases in canonical order — consumers
    #: with different alias spellings rename positionally against these.
    aliases: tuple[str, ...]
    #: Number of ``SharedScan`` references to this node across the tick
    #: (from entry plans and other shared subplans); always >= 2.
    consumers: int = 0
    #: Node count of the original subtree (topological order key).
    size: int = 0


@dataclass
class TickEntry:
    """One tick query after shared-subplan substitution."""

    key: str
    plan: LogicalPlan
    rewritten: LogicalPlan
    shared_refs: tuple[str, ...] = ()


@dataclass
class TickPlan:
    """The tick-wide shared-plan DAG: rewritten entries plus shared nodes
    in dependency order (every shared node only references strictly
    smaller ones, so evaluating in list order satisfies all consumers)."""

    entries: list[TickEntry] = field(default_factory=list)
    shared: list[SharedSubplan] = field(default_factory=list)

    @property
    def shared_reference_count(self) -> int:
        return sum(node.consumers for node in self.shared)

    @property
    def evaluations_saved(self) -> int:
        """Subplan evaluations avoided per tick versus unshared execution."""
        return sum(node.consumers - 1 for node in self.shared)


#: Node types worth materializing.  Bare scans are excluded (the batch
#: path already snapshot-caches them and the row path would only trade a
#: scan for a copy); condition-less joins are excluded because their
#: streamed cross product must never be materialized.
def _shareable(plan: LogicalPlan) -> bool:
    if isinstance(plan, Fixpoint):
        # A fixpoint is a closed recursive computation: identical closures
        # across scripts materialize once per tick.  Checked before the
        # RecursiveRef guard below — the step *inside* necessarily contains
        # the accumulator reference, but the fixpoint as a whole does not
        # depend on any outer binding.
        return True
    if any(isinstance(node, RecursiveRef) for node in plan.walk()):
        # A subtree still referencing the accumulator is re-bound every
        # round; materializing one round's result would be wrong for all
        # the others.
        return False
    if isinstance(plan, (Select, Project, Aggregate, Union, Distinct, Sort, Limit)):
        return True
    if isinstance(plan, Join):
        return plan.how != "cross" and plan.condition is not None
    return False


def _rewrite(
    plan: LogicalPlan,
    shared_fps: set[str],
    rep_aliases: Mapping[str, tuple[str, ...]],
    refs: list[str],
    skip_root: bool = False,
) -> LogicalPlan:
    """Replace maximal shared subtrees of *plan* with ``SharedScan`` leaves,
    appending each substituted fingerprint to *refs*."""
    if not skip_root and _shareable(plan):
        fp, aliases = fingerprint_plan(plan)
        if fp in shared_fps:
            reference = rep_aliases[fp]
            renames = {
                rep: mine for rep, mine in zip(reference, aliases) if rep != mine
            }
            refs.append(fp)
            return SharedScan(fp, plan, renames)
    children = plan.children()
    if not children:
        return plan
    new_children = [
        _rewrite(child, shared_fps, rep_aliases, refs) for child in children
    ]
    if all(new is old for new, old in zip(new_children, children)):
        return plan
    return plan.with_children(new_children)


def build_tick_plan(entries: Sequence[tuple[str, LogicalPlan]]) -> TickPlan:
    """Build the shared-subplan DAG for one tick's optimized logical plans.

    ``entries`` are ``(stable key, optimized logical plan)`` pairs, in tick
    execution order.  Fingerprints every subtree of every plan, selects
    subplans occurring at least twice, and iteratively prunes candidates
    whose substitution would leave them with fewer than two actual
    references (a subtree shared only *inside* two occurrences of a larger
    shared subtree collapses into it).
    """
    # Pass 1: count subtree fingerprints and remember first occurrences.
    counts: dict[str, int] = {}
    representatives: dict[str, tuple[LogicalPlan, tuple[str, ...], int]] = {}
    for _, plan in entries:
        for node in plan.walk():
            if not _shareable(node):
                continue
            fp, aliases = fingerprint_plan(node)
            counts[fp] = counts.get(fp, 0) + 1
            if fp not in representatives:
                representatives[fp] = (node, aliases, len(list(node.walk())))

    shared_fps = {fp for fp, count in counts.items() if count >= 2}
    rep_aliases = {fp: representatives[fp][1] for fp in representatives}

    # Pass 2: substitute and prune until every surviving shared node has at
    # least two references from reachable plans (entries or other survivors).
    while True:
        entry_refs: dict[str, list[str]] = {}
        rewritten: dict[str, LogicalPlan] = {}
        for key, plan in entries:
            refs: list[str] = []
            rewritten[key] = _rewrite(plan, shared_fps, rep_aliases, refs)
            entry_refs[key] = refs

        shared_defs: dict[str, tuple[LogicalPlan, list[str]]] = {}
        for fp in shared_fps:
            node, _, _ = representatives[fp]
            refs = []
            shared_defs[fp] = (
                _rewrite(node, shared_fps, rep_aliases, refs, skip_root=True),
                refs,
            )

        # Reachability + reference counting from the entries down.
        ref_counts: dict[str, int] = dict.fromkeys(shared_fps, 0)
        queue = [fp for refs in entry_refs.values() for fp in refs]
        for fp in queue:
            ref_counts[fp] += 1
        seen: set[str] = set()
        while queue:
            fp = queue.pop()
            if fp in seen:
                continue
            seen.add(fp)
            for nested in shared_defs[fp][1]:
                ref_counts[nested] += 1
                queue.append(nested)

        drop = {fp for fp in shared_fps if ref_counts[fp] < 2 or fp not in seen}
        if not drop:
            break
        shared_fps -= drop

    shared = [
        SharedSubplan(
            fingerprint=fp,
            plan=shared_defs[fp][0],
            aliases=rep_aliases[fp],
            consumers=ref_counts[fp],
            size=representatives[fp][2],
        )
        for fp in shared_fps
    ]
    # Dependency order: a shared node only references strictly smaller
    # subtrees, so ascending size is a valid topological order.
    shared.sort(key=lambda node: (node.size, node.fingerprint))
    return TickPlan(
        entries=[
            TickEntry(
                key=key,
                plan=plan,
                rewritten=rewritten[key],
                shared_refs=tuple(entry_refs[key]),
            )
            for key, plan in entries
        ],
        shared=shared,
    )
