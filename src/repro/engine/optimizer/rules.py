"""Logical rewrite rules.

The compiler emits a straightforward plan (scans → cross joins → one big
selection → projection/aggregation); these rules normalize it:

* ``split_conjunctions`` — one Select per conjunct.
* ``push_down_selections`` — move each selection as close to the scans as
  its referenced columns allow; selections referencing both sides of a join
  become join conditions.
* ``merge_selections`` — collapse adjacent selections back into one
  conjunction (after pushdown).
* ``prune_projections`` — drop unreferenced columns early (cheap in a row
  store, but it keeps intermediate rows narrow for the distributed
  executor's network model).

All rules are pure functions from plan to plan.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.algebra import (
    Aggregate,
    Distinct,
    Fixpoint,
    Join,
    LogicalPlan,
    Project,
    Select,
    ShardedScan,
    TableScan,
)
from repro.engine.catalog import Catalog
from repro.engine.expressions import BinaryOp, Expression, and_all

__all__ = [
    "expand_sharded_scans",
    "split_conjunctions",
    "push_down_selections",
    "merge_selections",
    "drop_distinct_over_fixpoint",
    "apply_standard_rewrites",
]


def _rewrite_children(plan: LogicalPlan, fn: Callable[[LogicalPlan], LogicalPlan]) -> LogicalPlan:
    children = plan.children()
    if not children:
        return plan
    new_children = [fn(c) for c in children]
    if all(new is old for new, old in zip(new_children, children)):
        return plan
    return plan.with_children(new_children)


def expand_sharded_scans(plan: LogicalPlan) -> LogicalPlan:
    """Expand ``ShardedScan`` into ``Select(TableScan, range predicate)``.

    Run first so every later rule — conjunct splitting, pushdown, index
    matching during lowering — sees the shard slice as an ordinary
    selection over the base table.
    """
    plan = _rewrite_children(plan, expand_sharded_scans)
    if isinstance(plan, ShardedScan):
        return plan.to_select()
    return plan


def split_conjunctions(plan: LogicalPlan) -> LogicalPlan:
    """Turn ``Select(p1 && p2)`` into ``Select(p1)(Select(p2))``."""
    plan = _rewrite_children(plan, split_conjunctions)
    if isinstance(plan, Select) and isinstance(plan.predicate, BinaryOp):
        conjuncts = plan.predicate.conjuncts()
        if len(conjuncts) > 1:
            node: LogicalPlan = plan.child
            for predicate in conjuncts:
                node = Select(node, predicate)
            return node
    return plan


def merge_selections(plan: LogicalPlan) -> LogicalPlan:
    """Collapse chains of Select nodes into a single conjunction."""
    plan = _rewrite_children(plan, merge_selections)
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        predicates = [plan.predicate]
        child = plan.child
        while isinstance(child, Select):
            predicates.append(child.predicate)
            child = child.child
        return Select(child, and_all(reversed(predicates)))
    return plan


def _columns_available(plan: LogicalPlan, catalog: Catalog) -> set[str]:
    try:
        schema = plan.output_schema(catalog)
    except Exception:
        return set()
    names = set(schema.names)
    names |= {c.unqualified_name for c in schema}
    return names


def _covers(predicate: Expression, plan: LogicalPlan, catalog: Catalog) -> bool:
    """Whether every column referenced by *predicate* is produced by *plan*.

    Qualified names (``"b.id"``) must match exactly — matching only on the
    unqualified suffix would let a predicate over the *other* join side be
    pushed to the wrong input.
    """
    available = _columns_available(plan, catalog)
    if not available:
        return False
    for column in predicate.columns():
        if column in available:
            continue
        if "." not in column and column.split(".")[-1] in available:
            continue
        return False
    return True


def push_down_selections(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """Push Select nodes toward the leaves; absorb join-spanning ones as
    join conditions."""

    def rewrite(node: LogicalPlan) -> LogicalPlan:
        node = _rewrite_children(node, rewrite)
        if not isinstance(node, Select):
            return node
        child = node.child
        predicate = node.predicate
        if isinstance(child, Select):
            # Try to push this predicate below the inner selection.  If it
            # does not move, keep the original nesting (avoids ping-ponging
            # two unpushable selections forever).
            pushed = rewrite(Select(child.child, predicate))
            if (
                isinstance(pushed, Select)
                and pushed.predicate is predicate
                and pushed.child is child.child
            ):
                return node
            return Select(pushed, child.predicate)
        if isinstance(child, Join):
            left, right = child.left, child.right
            if _covers(predicate, left, catalog):
                return rewrite(Join(Select(left, predicate), right, child.condition, child.how))
            if _covers(predicate, right, catalog) and child.how != "left":
                return rewrite(Join(left, Select(right, predicate), child.condition, child.how))
            # References both sides: make it (part of) the join condition.
            if child.how in ("inner", "cross"):
                condition = (
                    predicate
                    if child.condition is None
                    else BinaryOp("&&", child.condition, predicate)
                )
                return Join(left, right, condition, "inner")
            return node
        if isinstance(child, Project):
            # Push through a projection when the predicate only uses columns
            # that are pass-through references.
            passthrough = {
                name: expr
                for name, expr in child.projections
                if hasattr(expr, "name")
            }
            referenced = predicate.columns()
            if all(c in passthrough for c in referenced):
                substitution = {c: passthrough[c] for c in referenced}
                pushed = predicate.substitute(substitution)
                return Project(rewrite(Select(child.child, pushed)), child.projections, child.types)
            return node
        if isinstance(child, Aggregate):
            # Only push predicates that reference group-by columns alone.
            if all(c in child.group_by or c.split(".")[-1] in child.group_by for c in predicate.columns()):
                return Aggregate(
                    rewrite(Select(child.child, predicate)), child.group_by, child.aggregates
                )
            return node
        return node

    return rewrite(plan)


def drop_distinct_over_fixpoint(plan: LogicalPlan) -> LogicalPlan:
    """Remove ``Distinct`` directly above a ``Fixpoint``.

    The fixpoint accumulator is a set by construction (every produced row
    is deduplicated into it before the next round), so an outer Distinct
    over its full output is a no-op.  A Fixpoint with ``distinct_on`` set
    still qualifies: restricting the dedup key only removes *more* rows.
    """
    plan = _rewrite_children(plan, drop_distinct_over_fixpoint)
    if isinstance(plan, Distinct) and isinstance(plan.child, Fixpoint):
        return plan.child
    return plan


def apply_standard_rewrites(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """The default rewrite pipeline used by the planner."""
    plan = expand_sharded_scans(plan)
    plan = split_conjunctions(plan)
    plan = push_down_selections(plan, catalog)
    plan = merge_selections(plan)
    plan = drop_distinct_over_fixpoint(plan)
    return plan
