"""The planner facade: rewrite, reorder, cost and lower a logical plan."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.algebra import LogicalPlan, explain as explain_logical
from repro.engine.catalog import Catalog
from repro.engine.config import EngineConfig, resolve_engine_config
from repro.engine.operators import PhysicalOperator
from repro.engine.optimizer.cost import CostModel, PlanCost
from repro.engine.optimizer.join_order import reorder_joins
from repro.engine.optimizer.physical import PhysicalPlanner
from repro.engine.optimizer.rules import apply_standard_rewrites

__all__ = ["Planner", "PlannedQuery"]


@dataclass
class PlannedQuery:
    """The result of planning one query.

    Bundles the original logical plan, the rewritten/reordered logical
    plan, the lowered physical operator tree (which the executor runs
    every tick) and the cost estimate the plan was chosen with — the
    adaptive optimizer compares that estimate against observed runtime
    cardinalities to decide when to re-plan.
    """

    logical: LogicalPlan
    optimized: LogicalPlan
    physical: PhysicalOperator
    estimated: PlanCost

    @property
    def uses_batch(self) -> bool:
        """Whether any part of the physical plan runs on the batch path."""
        from repro.engine.operators import BatchBridgeOp

        return any(isinstance(op, BatchBridgeOp) for op in self.physical.walk())

    def explain(self, analyze: bool = False) -> str:
        lines = [
            "== logical ==",
            explain_logical(self.logical),
            "== optimized ==",
            explain_logical(self.optimized),
            "== physical ==",
            self.physical.explain(analyze=analyze),
            f"== estimated cost: {self.estimated.cost:.1f} rows: {self.estimated.cardinality:.1f} ==",
        ]
        return "\n".join(lines)


class Planner:
    """Cost-based planner over a catalog.

    Orchestrates the full pipeline for one query: logical rewrites
    (:mod:`repro.engine.optimizer.rules`), cost-based join reordering
    (:mod:`repro.engine.optimizer.join_order`), then lowering to physical
    operators (:class:`~repro.engine.optimizer.physical.PhysicalPlanner`).

    Configuration comes from one :class:`~repro.engine.config.EngineConfig`
    (``config=``): ``optimize=False`` skips rewrites and join reordering
    (used by the benchmarks to quantify what the optimizer buys);
    ``use_indexes=False`` forces pure scan plans; ``use_batch=False``
    forces row-at-a-time plans instead of the columnar batch path.  The
    old individual boolean keywords still work through the deprecation
    shim (:func:`~repro.engine.config.resolve_engine_config`).
    """

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig | None = None,
        *,
        optimize: bool | None = None,
        use_indexes: bool | None = None,
        use_batch: bool | None = None,
        index_advisor=None,
    ):
        config = resolve_engine_config(
            config,
            {"optimize": optimize, "use_indexes": use_indexes, "use_batch": use_batch},
        )
        self.catalog = catalog
        self.config = config
        self.optimize = config.optimize
        self.cost_model = CostModel(catalog, use_indexes=config.use_indexes)
        self.physical_planner = PhysicalPlanner(
            catalog,
            use_indexes=config.use_indexes,
            use_batch=config.use_batch,
            index_advisor=index_advisor,
            use_fixpoint=config.use_fixpoint,
            fixpoint_incremental=config.use_incremental,
        )

    def plan(self, logical: LogicalPlan) -> PlannedQuery:
        """Produce a physical plan for *logical*."""
        optimized = logical
        if self.optimize:
            optimized = apply_standard_rewrites(logical, self.catalog)
            optimized = reorder_joins(optimized, self.catalog, self.cost_model)
        physical = self.physical_planner.lower(optimized)
        estimated = self.cost_model.cost(optimized)
        return PlannedQuery(logical, optimized, physical, estimated)

    def build_incremental(self, optimized: LogicalPlan):
        """Lower *optimized* to a delta-maintained view, or ``None``.

        Returns an :class:`~repro.engine.operators.incremental.IncrementalView`
        when every node of the plan is provably delta-correct (see
        :mod:`repro.engine.optimizer.incremental` for the fallback rules).
        """
        from repro.engine.optimizer.incremental import IncrementalPlanner

        return IncrementalPlanner(self.catalog, self.physical_planner).build_view(
            optimized
        )

    def estimate(self, logical: LogicalPlan) -> PlanCost:
        """Cost a logical plan without lowering it (used by adaptive search)."""
        return self.cost_model.cost(logical)
