"""The planner facade: rewrite, reorder, cost and lower a logical plan."""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.algebra import LogicalPlan, explain as explain_logical
from repro.engine.catalog import Catalog
from repro.engine.operators import PhysicalOperator
from repro.engine.optimizer.cost import CostModel, PlanCost
from repro.engine.optimizer.join_order import reorder_joins
from repro.engine.optimizer.physical import PhysicalPlanner
from repro.engine.optimizer.rules import apply_standard_rewrites

__all__ = ["Planner", "PlannedQuery"]


@dataclass
class PlannedQuery:
    """The result of planning one query: plans, cost estimate, explain text."""

    logical: LogicalPlan
    optimized: LogicalPlan
    physical: PhysicalOperator
    estimated: PlanCost

    def explain(self, analyze: bool = False) -> str:
        lines = [
            "== logical ==",
            explain_logical(self.logical),
            "== optimized ==",
            explain_logical(self.optimized),
            "== physical ==",
            self.physical.explain(analyze=analyze),
            f"== estimated cost: {self.estimated.cost:.1f} rows: {self.estimated.cardinality:.1f} ==",
        ]
        return "\n".join(lines)


class Planner:
    """Cost-based planner over a catalog.

    ``optimize=False`` skips rewrites and join reordering (used by the
    benchmarks to quantify what the optimizer buys); ``use_indexes=False``
    forces pure scan plans.
    """

    def __init__(self, catalog: Catalog, optimize: bool = True, use_indexes: bool = True):
        self.catalog = catalog
        self.optimize = optimize
        self.cost_model = CostModel(catalog)
        self.physical_planner = PhysicalPlanner(catalog, use_indexes=use_indexes)

    def plan(self, logical: LogicalPlan) -> PlannedQuery:
        """Produce a physical plan for *logical*."""
        optimized = logical
        if self.optimize:
            optimized = apply_standard_rewrites(logical, self.catalog)
            optimized = reorder_joins(optimized, self.catalog, self.cost_model)
        physical = self.physical_planner.lower(optimized)
        estimated = self.cost_model.cost(optimized)
        return PlannedQuery(logical, optimized, physical, estimated)

    def estimate(self, logical: LogicalPlan) -> PlanCost:
        """Cost a logical plan without lowering it (used by adaptive search)."""
        return self.cost_model.cost(logical)
