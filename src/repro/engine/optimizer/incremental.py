"""Lowering logical plans to delta-driven incremental form.

The :class:`IncrementalPlanner` decides, entirely at plan time, whether a
registered per-tick query can be maintained from table deltas
(:mod:`repro.engine.operators.incremental`) instead of being re-executed
from scratch every tick.  The decision is conservative: a plan is lowered
only when every node is *provably* delta-correct, and anything else keeps
the query on the batch/row paths.

Fallback rules (mirroring the docstring in ``docs/ARCHITECTURE.md``):

* ``Sort`` / ``Limit`` / ``Distinct`` — non-monotonic or order-defining;
  a delta of the input does not determine a delta of the output without
  re-sorting, so these always fall back.
* Joins lower to :class:`~repro.engine.operators.incremental.DeltaJoinOp`:
  equi joins (inner and left outer, the accum-loop shape) with hashed key
  probing, and keyless inner joins (cross products and non-equi conditions
  such as the Figure-2 band join) whose per-refresh cost the view's churn
  guard keeps below a full re-execution.  Keyless *left* joins fall back —
  their padding terms would re-probe every left row.
* Aggregates using ``first`` / ``last`` / ``collect`` — input-order
  dependent, which a maintained multiset cannot reproduce; all other
  combinators lower to
  :class:`~repro.engine.operators.incremental.DeltaAggregateOp`.

Every stateless node also carries a lowered physical plan for its *full*
current output (used by join delta terms and full rebuilds), so the
incremental path reuses the columnar batch machinery rather than
reimplementing evaluation.
"""

from __future__ import annotations

from repro.engine.algebra import (
    Aggregate,
    Join,
    LogicalPlan,
    Project,
    Select,
    TableScan,
    Union,
    Values,
)
from repro.engine.catalog import Catalog
from repro.engine.errors import SchemaError
from repro.engine.expressions import BinaryOp, and_all
from repro.engine.operators.incremental import (
    MAINTAINABLE_AGGS,
    BandIndexProbe,
    DeltaAggregateOp,
    DeltaFilterOp,
    DeltaJoinOp,
    DeltaOperator,
    DeltaProjectOp,
    DeltaScanOp,
    DeltaUnionOp,
    DeltaValuesOp,
    IncrementalView,
)
from repro.engine.optimizer.physical import (
    PhysicalPlanner,
    _extract_equi_keys,
    _extract_range_probe,
)

__all__ = ["IncrementalPlanner"]


class IncrementalPlanner:
    """Builds :class:`IncrementalView` instances for maintainable plans."""

    def __init__(self, catalog: Catalog, physical_planner: PhysicalPlanner):
        self.catalog = catalog
        self.physical_planner = physical_planner

    def build_view(self, plan: LogicalPlan) -> IncrementalView | None:
        """Lower *plan* to a maintained view, or ``None`` to stay full.

        Enables change logging on every referenced base table (idempotent;
        before the first refresh the logs are empty and the view performs
        one full rebuild to seed its state).
        """
        root = self._build(plan)
        if root is None:
            return None
        tables = {
            name: self.catalog.table(name) for name in plan.referenced_tables()
        }
        for table in tables.values():
            table.enable_change_log()
        return IncrementalView(root, tables, root.names)

    # -- recursive lowering ---------------------------------------------------------

    def _build(self, plan: LogicalPlan) -> DeltaOperator | None:
        if isinstance(plan, TableScan):
            table = self.catalog.table(plan.table_name)
            return DeltaScanOp(table, plan.output_schema(self.catalog).names)
        if isinstance(plan, Values):
            wanted = set(plan.schema.names)
            if not all(set(row) == wanted for row in plan.rows):
                return None
            return DeltaValuesOp(plan.schema.names, plan.rows)
        if isinstance(plan, Select):
            child = self._build(plan.child)
            if child is None:
                return None
            return DeltaFilterOp(child, plan.predicate, self._full_plan(plan))
        if isinstance(plan, Project):
            child = self._build(plan.child)
            if child is None:
                return None
            return DeltaProjectOp(child, plan.projections, self._full_plan(plan))
        if isinstance(plan, Join):
            return self._build_join(plan)
        if isinstance(plan, Aggregate):
            return self._build_aggregate(plan)
        if isinstance(plan, Union):
            left = self._build(plan.left)
            right = self._build(plan.right)
            if left is None or right is None:
                return None
            return DeltaUnionOp(left, right, self._full_plan(plan))
        # Sort / Limit / Distinct / anything unknown: not delta-correct.
        return None

    def _build_join(self, plan: Join) -> DeltaOperator | None:
        left = self._build(plan.left)
        right = self._build(plan.right)
        if left is None or right is None:
            return None
        how = "left" if plan.how == "left" else "inner"
        if plan.how == "cross" or plan.condition is None:
            if how == "left":
                # Keyless left join (see below): not worth maintaining.
                return None
            return DeltaJoinOp(
                left, right, [], [], None, self._full_plan(plan), how=how
            )
        left_schema = plan.left.output_schema(self.catalog)
        right_schema = plan.right.output_schema(self.catalog)
        conjuncts = (
            plan.condition.conjuncts()
            if isinstance(plan.condition, BinaryOp)
            else [plan.condition]
        )
        equi = _extract_equi_keys(conjuncts, left_schema, right_schema)
        if equi is not None:
            left_keys, right_keys, residual_conjuncts = equi
            residual = and_all(residual_conjuncts) if residual_conjuncts else None
            return DeltaJoinOp(
                left, right, left_keys, right_keys, residual, self._full_plan(plan), how=how
            )
        if how == "left":
            # A keyless left join would probe every left row against the
            # whole right side for the padding terms; not worth maintaining.
            return None
        # Non-equi inner condition (e.g. the Figure-2 band join): maintain it
        # as a keyless join with the condition as residual.  Per-refresh cost
        # is O(|Δ| · |other side|), bounded by the view's churn guard — and
        # zero when nothing moved, which is the case the tick loop cares
        # about.  When the right side is a base table whose band columns a
        # registered index covers, the ΔA terms probe that index instead of
        # rescanning the table (the index is re-resolved per refresh, so
        # advisor-created indexes help without re-registering the view).
        return DeltaJoinOp(
            left,
            right,
            [],
            [],
            plan.condition,
            self._full_plan(plan),
            how=how,
            band_probe=self._band_probe(plan, conjuncts, left_schema, right_schema),
        )

    def _band_probe(self, plan: Join, conjuncts, left_schema, right_schema):
        """A :class:`BandIndexProbe` for the join's inner side, if eligible."""
        if not isinstance(plan.right, TableScan) or not self.catalog.has_table(
            plan.right.table_name
        ):
            return None
        extraction = _extract_range_probe(conjuncts, left_schema, right_schema)
        if not extraction:
            return None
        table = self.catalog.table(plan.right.table_name)
        dimensions = []
        for column, low_expr, high_expr in extraction[0]:
            try:
                resolved = table.schema.resolve(column.split(".")[-1])
            except SchemaError:
                return None
            dimensions.append((resolved, low_expr, high_expr))
        probe = BandIndexProbe(table, dimensions)
        advisor = self.physical_planner.index_advisor
        if advisor is not None:
            probe.advisor_hook = advisor.make_hook(
                table.name, tuple(column for column, _, _ in dimensions)
            )
        return probe

    def _build_aggregate(self, plan: Aggregate) -> DeltaOperator | None:
        if any(spec.func not in MAINTAINABLE_AGGS for spec in plan.aggregates):
            return None
        child = self._build(plan.child)
        if child is None:
            return None
        try:
            child_schema = plan.child.output_schema(self.catalog)
            indices = [child_schema.index_of(g) for g in plan.group_by]
        except SchemaError:
            return None
        return DeltaAggregateOp(child, plan.group_by, indices, plan.aggregates)

    def _full_plan(self, plan: LogicalPlan):
        return self.physical_planner.lower(plan)
