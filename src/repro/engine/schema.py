"""Schemas and columns for the main-memory engine.

A :class:`Schema` is an ordered collection of :class:`Column` objects.  The
SGL compiler generates schemas from class declarations (the programmer never
writes one by hand — Section 2.1 of the paper), but the engine itself is a
general relational engine and schemas can also be constructed directly.

Column names may be *qualified* (``"u.x"``) when a relation is the output of
a join or a renamed scan; :meth:`Schema.resolve` implements the usual
SQL-style resolution where an unqualified name matches a unique qualified
column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.engine.errors import SchemaError, TypeMismatchError
from repro.engine.types import DataType, coerce_value, default_value, is_valid

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single column: name, type, nullability and default value.

    The ``default`` of ``None`` means "use the type default" (see
    :func:`repro.engine.types.default_value`), not a NULL default —
    pass ``nullable=True`` and ``default=None`` explicitly for that.
    """

    name: str
    dtype: DataType = DataType.ANY
    nullable: bool = True
    default: Any = field(default=None)

    def with_name(self, name: str) -> "Column":
        """Return a copy of this column under a new name."""
        return Column(name, self.dtype, self.nullable, self.default)

    def qualified(self, qualifier: str) -> "Column":
        """Return a copy named ``qualifier.name`` (drops any old qualifier)."""
        base = self.name.split(".")[-1]
        return self.with_name(f"{qualifier}.{base}")

    @property
    def unqualified_name(self) -> str:
        """The column name with any ``alias.`` prefix removed."""
        return self.name.split(".")[-1]

    def default_or_type_default(self) -> Any:
        """The value used when a row omits this column."""
        if self.default is not None:
            return self.default
        if self.nullable and self.default is None and self.dtype is DataType.ANY:
            return None
        return default_value(self.dtype)


class Schema:
    """An ordered, immutable list of columns with name-based lookup."""

    __slots__ = ("_columns", "_by_name")

    def __init__(self, columns: Iterable[Column]):
        cols = tuple(columns)
        by_name: dict[str, int] = {}
        for i, col in enumerate(cols):
            if col.name in by_name:
                raise SchemaError(f"duplicate column name {col.name!r}")
            by_name[col.name] = i
        self._columns = cols
        self._by_name = by_name

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype}" for c in self._columns)
        return f"Schema({cols})"

    # -- lookup -------------------------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except SchemaError:
            return False
        return True

    def column(self, name: str) -> Column:
        """Return the column named *name* (after :meth:`resolve`)."""
        return self._columns[self.index_of(name)]

    def index_of(self, name: str) -> int:
        """Return the position of *name*, resolving unqualified names."""
        resolved = self.resolve(name)
        return self._by_name[resolved]

    def resolve(self, name: str) -> str:
        """Resolve *name* to the exact column name stored in this schema.

        An exact match always wins.  Otherwise, an unqualified name matches
        a single column whose unqualified part equals it; ambiguity or a
        missing column raises :class:`SchemaError`.
        """
        if name in self._by_name:
            return name
        matches = [c.name for c in self._columns if c.unqualified_name == name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SchemaError(f"unknown column {name!r} (have {list(self.names)})")
        raise SchemaError(f"ambiguous column {name!r}: matches {matches}")

    # -- derivation ---------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only *names*, in the given order."""
        return Schema(self.column(n) for n in names)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with columns renamed per *mapping* (old → new)."""
        out = []
        for col in self._columns:
            new = mapping.get(col.name, mapping.get(col.unqualified_name))
            out.append(col.with_name(new) if new else col)
        return Schema(out)

    def qualify(self, qualifier: str) -> "Schema":
        """Return a schema where every column is prefixed with *qualifier*."""
        return Schema(c.qualified(qualifier) for c in self._columns)

    def concat(self, other: "Schema") -> "Schema":
        """Return the schema of a join output: this schema then *other*.

        Raises :class:`SchemaError` on a name collision; callers are expected
        to qualify the two sides first.
        """
        return Schema(self._columns + other._columns)

    def add(self, column: Column) -> "Schema":
        """Return a schema with *column* appended."""
        return Schema(self._columns + (column,))

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the given columns."""
        resolved = {self.resolve(n) for n in names}
        return Schema(c for c in self._columns if c.name not in resolved)

    # -- row helpers --------------------------------------------------------------

    def new_row(self, values: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Build a full row dict from *values*, filling defaults and validating.

        Unknown keys raise :class:`SchemaError`; type mismatches raise
        :class:`TypeMismatchError`; a missing non-nullable column with no
        usable default raises :class:`SchemaError`.
        """
        values = dict(values or {})
        row: dict[str, Any] = {}
        for col in self._columns:
            if col.name in values:
                value = values.pop(col.name)
            elif col.unqualified_name in values:
                value = values.pop(col.unqualified_name)
            else:
                value = col.default_or_type_default()
                if value is None and not col.nullable:
                    raise SchemaError(f"missing value for non-nullable column {col.name!r}")
            row[col.name] = coerce_value(col.dtype, value)
            if row[col.name] is None and not col.nullable:
                raise SchemaError(f"null value for non-nullable column {col.name!r}")
        if values:
            raise SchemaError(f"unknown columns in row: {sorted(values)}")
        return row

    def validate_row(self, row: Mapping[str, Any]) -> None:
        """Check that *row* has exactly this schema's columns with valid types."""
        for col in self._columns:
            if col.name not in row:
                raise SchemaError(f"row is missing column {col.name!r}")
            value = row[col.name]
            if value is None:
                if not col.nullable:
                    raise SchemaError(f"null in non-nullable column {col.name!r}")
                continue
            if not is_valid(col.dtype, value):
                raise TypeMismatchError(
                    f"column {col.name!r} expects {col.dtype}, got {value!r}"
                )
