"""Plan-to-kernel compilation: fused per-pipeline Python kernels.

See :mod:`repro.engine.compile.kernels` for the pipeline grammar and the
equivalence contract, and :mod:`repro.engine.compile.exprgen` for the
expression codegen.
"""

from repro.engine.compile.kernels import KernelLowering, KernelOp, KernelProgram

__all__ = ["KernelLowering", "KernelOp", "KernelProgram"]
