"""Expression → Python source generation for compiled kernels.

Turns an :class:`~repro.engine.expressions.Expression` tree into a Python
source fragment that evaluates it for "the current row" of a fused kernel
loop.  Column access is delegated to a *resolver* callback supplied by the
kernel compiler (it knows whether the current row is a batch index, a join
pair, or a set of aggregate-output locals).

The generated code reproduces :meth:`Expression.evaluate` /
:func:`~repro.engine.expressions.compile_batch` semantics exactly:

* arithmetic and ordered comparisons are null-safe (any ``None`` operand
  yields ``None``), division additionally yields ``None`` on a zero
  divisor;
* ``&&`` / ``||`` short-circuit on truthiness and return actual bools;
* function calls null-propagate unless the function is null-tolerant;
* conditionals branch on truthiness, set literals build ``frozenset``.

Operands that are needed twice (the ``None`` test and the operation) are
bound to walrus temporaries so every sub-expression is evaluated exactly
once, like the interpreted tree.  Non-trivial constants (function objects,
frozensets, non-finite floats) are captured by name in the kernel's
``exec`` environment rather than inlined.

A second entry point, :meth:`ExprGen.boolean`, emits a fragment whose
*truthiness* equals ``bool(value)`` — used for filter guards, where
comparisons can skip materializing the tri-state ``None``/``True``/
``False`` result entirely.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.engine.expressions import (
    _FUNCTIONS,
    _NULL_TOLERANT_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Conditional,
    Expression,
    FunctionCall,
    Literal,
    SetLiteral,
    UnaryOp,
    Variable,
)

__all__ = ["ExprGen", "KernelDecline", "SourceBuilder"]


class KernelDecline(Exception):
    """Raised when a plan fragment cannot be compiled into a kernel.

    Callers catch this and fall back to the interpreted operator tree, so
    raising it is always safe — never an error surfaced to users.
    """


class SourceBuilder:
    """Allocates unique temporaries and captured-constant names for one kernel."""

    def __init__(self) -> None:
        self.env: dict[str, Any] = {}
        self._counter = 0

    def temp(self, prefix: str = "_t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def const(self, value: Any, prefix: str = "_k") -> str:
        """Capture *value* in the kernel environment; returns its name."""
        name = self.temp(prefix)
        self.env[name] = value
        return name


#: Null-safe binary operators rendered as infix Python (both operands
#: needed twice: once for the None test, once for the operation).
_NULL_SAFE_INFIX = {"+", "-", "*", "%", "<", "<=", ">", ">=", "/"}


class ExprGen:
    """Generates Python source for expressions over a resolver-defined row."""

    def __init__(self, resolver: Callable[[Any], str], builder: SourceBuilder):
        #: Maps a ColumnRef/Variable node to a Python fragment reading its
        #: value for the current row (Variables bind by exact key only,
        #: matching ``compile_batch``); raises :class:`KernelDecline` when
        #: the name does not resolve.
        self.resolver = resolver
        self.builder = builder
        #: Row variables the most recent :meth:`boolean` guard proves
        #: non-``None`` on its true branch.
        self.proved_non_null: list[str] = []

    # -- value mode ------------------------------------------------------------------------

    def value(self, expr: Expression) -> str:
        """Source whose value equals ``expr.evaluate(row)``."""
        if isinstance(expr, Literal):
            return self._literal(expr.value)
        if isinstance(expr, (ColumnRef, Variable)):
            return self.resolver(expr)
        if isinstance(expr, BinaryOp):
            return self._binary_value(expr)
        if isinstance(expr, UnaryOp):
            return self._unary_value(expr)
        if isinstance(expr, FunctionCall):
            return self._call_value(expr)
        if isinstance(expr, Conditional):
            true = self.value(expr.if_true)
            false = self.value(expr.if_false)
            cond = self.value(expr.condition)
            return f"({true} if {cond} else {false})"
        if isinstance(expr, SetLiteral):
            elements = ", ".join(self.value(e) for e in expr.elements)
            trailing = "," if len(expr.elements) == 1 else ""
            return f"frozenset(({elements}{trailing}))"
        raise KernelDecline(f"cannot compile {type(expr).__name__}")

    # -- boolean (guard) mode --------------------------------------------------------------

    def boolean(self, expr: Expression) -> str:
        """Source whose truthiness equals ``bool(expr.evaluate(row))``.

        ``None`` results are falsy either way, so ordered comparisons can
        collapse the null checks and the comparison into one ``and`` chain.

        Also populates :attr:`proved_non_null` with row-variable names
        this guard proves non-``None`` when it passes — only facts from
        unconditionally-evaluated positions (and-chains of ordered
        comparisons; never from under ``||`` or ``!``).
        """
        self.proved_non_null: list[str] = []
        return self._boolean(expr, collect=True)

    def _boolean(self, expr: Expression, *, collect: bool) -> str:
        if isinstance(expr, BinaryOp):
            op = expr.op
            if op == "&&":
                return (
                    f"({self._boolean(expr.left, collect=collect)}"
                    f" and {self._boolean(expr.right, collect=collect)})"
                )
            if op == "||":
                return (
                    f"({self._boolean(expr.left, collect=False)}"
                    f" or {self._boolean(expr.right, collect=False)})"
                )
            if op in ("<", "<=", ">", ">="):
                lf, lr, lnn = self._operand(expr.left)
                rf, rr, rnn = self._operand(expr.right)
                if lnn is None or rnn is None:
                    return "False"  # null-safe comparison against NULL
                parts = []
                if not lnn:
                    parts.append(f"{lf} is not None")
                    if collect and lr.isidentifier():
                        self.proved_non_null.append(lr)
                if not rnn:
                    parts.append(f"{rf} is not None")
                    if collect and rr.isidentifier():
                        self.proved_non_null.append(rr)
                parts.append(f"{lr} {op} {rr}")
                return "(" + " and ".join(parts) + ")"
            if op in ("==", "!="):
                return f"({self.value(expr.left)} {op} {self.value(expr.right)})"
        if isinstance(expr, UnaryOp) and expr.op == "!":
            return f"(not {self._boolean(expr.operand, collect=False)})"
        if isinstance(expr, Literal):
            return "True" if expr.value else "False" if expr.value is not None else "False"
        return self.value(expr)

    # -- operand helper --------------------------------------------------------------------

    def _operand(self, expr: Expression) -> tuple[str, str, bool | None]:
        """Emit an operand needed both for a null test and the operation.

        Returns ``(first_use, reuse, non_none)``: *first_use* is the
        fragment to evaluate first (a walrus binding when the value could
        be ``None``), *reuse* names the bound value for later mentions.
        *non_none* is ``True`` for values that provably cannot be ``None``
        (non-null literals, set literals) — their guard can be skipped —
        and ``None`` for the literal ``NULL`` (null-safe operations on it
        are constant).  All expressions are pure, so skipping or
        reordering the guard evaluation is unobservable.
        """
        if isinstance(expr, Literal):
            if expr.value is None:
                return "None", "None", None
            frag = self._literal(expr.value)
            return frag, frag, True
        if isinstance(expr, SetLiteral):
            frag = self.value(expr)
            return frag, frag, True
        src = self.value(expr)
        if src.isidentifier():
            # Already a bound local (e.g. a zip-loop row variable):
            # mentioning it twice is free, no walrus needed.
            return src, src, False
        temp = self.builder.temp()
        return f"({temp} := {src})", temp, False

    # -- node emitters ---------------------------------------------------------------------

    def _literal(self, value: Any) -> str:
        if value is None:
            return "None"
        if value is True:
            return "True"
        if value is False:
            return "False"
        if isinstance(value, int):
            return repr(value)
        if isinstance(value, float):
            if math.isfinite(value):
                return repr(value)
            return self.builder.const(value)
        if isinstance(value, str):
            return repr(value)
        return self.builder.const(value)

    def _binary_value(self, expr: BinaryOp) -> str:
        op = expr.op
        if op == "&&":
            return f"(bool({self.value(expr.left)}) and bool({self.value(expr.right)}))"
        if op == "||":
            return f"(bool({self.value(expr.left)}) or bool({self.value(expr.right)}))"
        if op in ("==", "!="):
            return f"({self.value(expr.left)} {op} {self.value(expr.right)})"
        if op == "in":
            rf, rr, rnn = self._operand(expr.right)
            if rnn is None:
                return "False"  # membership in NULL is null-safe False
            left = self.value(expr.left)
            if rnn:
                return f"({left} in {rr})"
            # The conditional's test runs first, binding the container;
            # sub-expressions are pure, so binding order is unobservable.
            return f"({left} in {rr} if {rf} is not None else False)"
        if op in _NULL_SAFE_INFIX or op in ("min", "max"):
            lf, lr, lnn = self._operand(expr.left)
            rf, rr, rnn = self._operand(expr.right)
            if lnn is None or rnn is None:
                return "None"  # null-safe operation on the literal NULL
            if op in ("min", "max"):
                body = f"{op}({lr}, {rr})"
            else:
                body = f"{lr} {op} {rr}"
            guards = []
            if not lnn:
                guards.append(f"{lf} is None")
            if not rnn:
                guards.append(f"{rf} is None")
            if op == "/":
                if rnn:
                    if expr.right.value == 0:  # type: ignore[union-attr]
                        return "None"
                else:
                    guards.append(f"{rr} == 0")
            if not guards:
                return f"({body})"
            return f"(None if {' or '.join(guards)} else {body})"
        raise KernelDecline(f"unsupported binary operator {op!r}")

    def _unary_value(self, expr: UnaryOp) -> str:
        if expr.op == "!":
            return f"(not bool({self.value(expr.operand)}))"
        first, reuse, non_none = self._operand(expr.operand)
        if non_none is None:
            return "None"
        body = f"-{reuse}" if expr.op == "-" else f"abs({reuse})"
        if non_none:
            return f"({body})"
        return f"(None if {first} is None else {body})"

    def _call_value(self, expr: FunctionCall) -> str:
        fn_name = self.builder.const(_FUNCTIONS[expr.name], "_fn")
        if expr.name in _NULL_TOLERANT_FUNCTIONS:
            args = ", ".join(self.value(a) for a in expr.args)
            return f"{fn_name}({args})"
        guards, uses = [], []
        for arg in expr.args:
            first, reuse, non_none = self._operand(arg)
            if non_none is None:
                return "None"  # a NULL argument null-propagates
            if not non_none:
                guards.append(f"{first} is None")
            uses.append(reuse)
        call = f"{fn_name}({', '.join(uses)})"
        if not guards:
            return call
        return f"(None if {' or '.join(guards)} else {call})"
