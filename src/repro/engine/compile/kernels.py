"""Plan-to-kernel compilation: one fused Python function per pipeline.

The batch path (:mod:`repro.engine.operators.batch_ops`) already avoids
per-row dicts, but it still interprets the physical tree operator by
operator — every filter is a separate pass allocating a selection list,
every aggregate argument goes through a compiled-closure dispatch per
element.  This module walks an *optimized logical plan* and, when the
whole pipeline fits a fusable shape, emits a single Python function that
runs scan → filter → join → project → aggregate in one loop nest over the
input column lists.  The source is built by codegen
(:mod:`repro.engine.compile.exprgen`), ``compile()``d once, and cached by
the MQO plan fingerprint, so repeated ticks and deduped standing queries
pay codegen exactly once.

Fusable shapes — everything else falls back to the interpreted tree:

* a stack of ``Select`` / ``Project`` / ``Aggregate`` nodes over a core;
* the core is a leaf (``TableScan`` / ``SharedScan``) or an inner ``Join``
  whose sides are ``Select``-chains over leaves and whose condition is an
  equi-join or the band-join (range probe) shape.

Equivalence contract: a kernel produces *exactly* the rows, in exactly
the order, that the interpreted operators it replaces would produce —
including the transient-grid probe order of
:class:`~repro.engine.operators.joins.RangeProbeJoinOp` and its
index-advisor probe statistics.  To keep plan *choice* identical too, the
compiler declines whenever the interpreted planner would have used an
index (matched index scans, covered band probes), whenever an expression
is not provably batch-compilable, and for order-pathological shapes like
duplicate aggregate output names.

``SharedScan`` leaves become kernel inputs served by the tick pipeline's
shared materializations; ``EffectSink`` fusion composes unchanged because
a kernel is wrapped in the same :class:`BatchBridgeOp` boundary the batch
path uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine.algebra import (
    Aggregate,
    AggregateSpec,
    Join,
    LogicalPlan,
    Project,
    Select,
    TableScan,
)
from repro.engine.batch import ColumnBatch
from repro.engine.compile.exprgen import ExprGen, KernelDecline, SourceBuilder
from repro.engine.errors import SchemaError
from repro.engine.expressions import (
    BinaryOp,
    Expression,
    Variable,
    batch_supported,
    resolve_batch_column,
)
from repro.engine.operators.batch_ops import (
    BatchBridgeOp,
    BatchOperator,
    BatchTableScanOp,
    _fold_values,
)
from repro.engine.optimizer.mqo import SharedScan, fingerprint_plan
from repro.engine.optimizer.physical import (
    _extract_equi_keys,
    _extract_range_probe,
    inner_scan_info,
    match_band_index,
)

__all__ = ["KernelLowering", "KernelOp", "KernelProgram"]


# -- compiled artifacts ----------------------------------------------------------------------


@dataclass
class KernelProgram:
    """One ``compile()``d fused function plus the metadata to re-wire it.

    The program is plan-shape specific but *instance* independent: input
    operators (and the advisor stats hook) are rebuilt per lowering from
    the concrete plan, so one cached program serves every plan with the
    same fingerprint.
    """

    source: str
    fn: Callable[[list[ColumnBatch], Any], ColumnBatch]
    names: tuple[str, ...]
    n_inputs: int
    uses_hook: bool
    fused_nodes: int


class KernelOp(BatchOperator):
    """Batch operator that runs a compiled kernel over its input batches.

    Lives inside the standard :class:`BatchBridgeOp` boundary, so the
    executor, shared-subplan materialization, effect-sink fusion and
    ``explain`` all treat it like any other batch subtree.
    """

    def __init__(
        self,
        schema: Any,
        program: KernelProgram,
        children: tuple[BatchOperator, ...],
        stats_hook: Callable[[int, float, int], None] | None = None,
    ):
        super().__init__(schema, program.names, children)
        self.program = program
        self.stats_hook = stats_hook

    def execute(self) -> ColumnBatch:
        inputs = [child.execute() for child in self.children]
        return self.program.fn(inputs, self.stats_hook)

    def label(self) -> str:
        return (
            f"CompiledKernel({self.program.fused_nodes} nodes fused, "
            f"{len(self.children)} input(s))"
        )


# -- pipeline analysis -----------------------------------------------------------------------


@dataclass
class _FilterStage:
    conjuncts: list[Expression]


@dataclass
class _ProjectStage:
    projections: tuple[tuple[str, Expression], ...]


@dataclass
class _AggStage:
    group_names: tuple[str, ...]
    group_columns: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]


@dataclass
class _ScanCore:
    pass


@dataclass
class _EquiCore:
    left_filters: list[Expression]
    right_filters: list[Expression]
    left_keys: list[Expression]
    right_keys: list[Expression]
    residual: list[Expression]


@dataclass
class _BandCore:
    left_filters: list[Expression]
    right_filters: list[Expression]
    dimensions: list[tuple[str, Expression, Expression]]
    residual: list[Expression]


@dataclass
class _Pipeline:
    core: Any
    stages: list[Any]
    leaf_ops: list[BatchOperator]
    out_names: tuple[str, ...]
    hook: Callable[[int, float, int], None] | None
    signature: str
    fused_nodes: int


def _conjuncts_of(predicate: Expression) -> list[Expression]:
    if isinstance(predicate, BinaryOp):
        return predicate.conjuncts()
    return [predicate]


def _strip_selects(plan: LogicalPlan) -> tuple[list[Select], LogicalPlan]:
    """Peel a Select chain; returns (selects outermost-first, the base node)."""
    selects: list[Select] = []
    node = plan
    while isinstance(node, Select):
        selects.append(node)
        node = node.child
    return selects, node


def _side_filters(selects: list[Select]) -> list[Expression]:
    """Conjuncts of a side's Select chain in row-path evaluation order
    (innermost filter first, as nested FilterOps would apply them)."""
    out: list[Expression] = []
    for select in reversed(selects):
        out.extend(_conjuncts_of(select.predicate))
    return out


def _index_declines(planner: Any, selects: list[Select], leaf: LogicalPlan) -> bool:
    """Whether the interpreted planner would index-scan this Select-over-scan.

    Mirrors ``_lower_select`` / ``_lower_batch`` exactly: only the Select
    node *directly* above a ``TableScan`` is eligible, and only with
    ``use_indexes`` on.  When it matches, the interpreted path produces
    rows in index order, so the kernel must decline to stay equivalent.
    """
    if not planner.use_indexes or not selects or not isinstance(leaf, TableScan):
        return False
    innermost = selects[-1]
    return planner._match_index(leaf.table_name, innermost.predicate) is not None


def _leaf_batch_op(leaf: LogicalPlan, planner: Any) -> BatchOperator | None:
    """Build the batch source operator for a pipeline leaf."""
    if isinstance(leaf, TableScan):
        if not planner.catalog.has_table(leaf.table_name):
            return None
        table = planner.catalog.table(leaf.table_name)
        return BatchTableScanOp(table, leaf.output_schema(planner.catalog), leaf.alias)
    if isinstance(leaf, SharedScan):
        if planner.shared_lowering is not None:
            op = planner.shared_lowering.batch_source(leaf)
            if op is not None:
                return op
        # No shared materialization available: serve the consumer's own
        # equivalent source subtree, like the interpreted fallback does.
        return planner._lower_batch(leaf.source)
    return None


def _analyze(plan: LogicalPlan, planner: Any) -> _Pipeline | None:
    """Match *plan* against the fusable pipeline grammar, or ``None``."""
    catalog = planner.catalog

    stack: list[LogicalPlan] = []
    node = plan
    while isinstance(node, (Select, Project, Aggregate)):
        stack.append(node)
        node = node.child

    leaf_ops: list[BatchOperator] = []
    hook = None
    fused = len(stack)

    if isinstance(node, (TableScan, SharedScan)):
        if not stack:
            return None  # bare leaf: nothing to fuse
        selects_above = [n for n in stack if isinstance(n, Select)]
        if (
            selects_above
            and isinstance(stack[-1], Select)
            and _index_declines(planner, [stack[-1]], node)
        ):
            return None
        leaf = _leaf_batch_op(node, planner)
        if leaf is None:
            return None
        leaf_ops.append(leaf)
        core: Any = _ScanCore()
        names: tuple[str, ...] = tuple(leaf.names)
        fused += 1
    elif isinstance(node, Join):
        join = node
        if join.how != "inner" or join.condition is None:
            return None
        left_selects, left_leaf = _strip_selects(join.left)
        right_selects, right_leaf = _strip_selects(join.right)
        if not isinstance(left_leaf, (TableScan, SharedScan)):
            return None
        if not isinstance(right_leaf, (TableScan, SharedScan)):
            return None
        if _index_declines(planner, left_selects, left_leaf):
            return None
        if _index_declines(planner, right_selects, right_leaf):
            return None
        left_op = _leaf_batch_op(left_leaf, planner)
        right_op = _leaf_batch_op(right_leaf, planner)
        if left_op is None or right_op is None:
            return None
        leaf_ops.extend([left_op, right_op])
        left_names = tuple(left_op.names)
        right_names = tuple(right_op.names)
        left_filters = _side_filters(left_selects)
        right_filters = _side_filters(right_selects)
        for conjunct in left_filters:
            if not batch_supported(conjunct, left_names):
                return None
        for conjunct in right_filters:
            if not batch_supported(conjunct, right_names):
                return None
        conjuncts = _conjuncts_of(join.condition)
        left_schema = join.left.output_schema(catalog)
        right_schema = join.right.output_schema(catalog)
        combined = left_names + right_names
        equi = _extract_equi_keys(conjuncts, left_schema, right_schema)
        if equi:
            left_keys, right_keys, residual = equi
            if not all(batch_supported(k, left_names) for k in left_keys):
                return None
            if not all(batch_supported(k, right_names) for k in right_keys):
                return None
            if not all(batch_supported(r, combined) for r in residual):
                return None
            core = _EquiCore(left_filters, right_filters, left_keys, right_keys, residual)
        else:
            probe = _extract_range_probe(conjuncts, left_schema, right_schema)
            if not probe:
                return None
            dimensions, residual = probe
            if (
                planner.use_indexes
                and match_band_index(catalog, join.right, dimensions) is not None
            ):
                return None  # the interpreted path would probe a real index
            for column, low, high in dimensions:
                # RangeProbeJoinOp reads probe coordinates by exact key.
                if column not in right_names:
                    return None
                if not batch_supported(low, left_names):
                    return None
                if not batch_supported(high, left_names):
                    return None
            if not all(batch_supported(r, combined) for r in residual):
                return None
            core = _BandCore(left_filters, right_filters, list(dimensions), residual)
            hook = _band_hook(planner, join.right, dimensions)
        names = combined
        fused += 1 + len(left_selects) + len(right_selects)
    else:
        return None

    stages: list[Any] = []
    for node in reversed(stack):
        if isinstance(node, Select):
            conjuncts = _conjuncts_of(node.predicate)
            if not all(batch_supported(c, names) for c in conjuncts):
                return None
            stages.append(_FilterStage(conjuncts))
        elif isinstance(node, Project):
            if not all(batch_supported(e, names) for _, e in node.projections):
                return None
            stages.append(_ProjectStage(tuple(node.projections)))
            names = tuple(n for n, _ in node.projections)
        else:  # Aggregate
            try:
                child_schema = node.child.output_schema(catalog)
                resolved = [child_schema.resolve(g) for g in node.group_by]
            except SchemaError:
                return None
            group_columns = []
            for resolved_name in resolved:
                batch_name = resolve_batch_column(resolved_name, names)
                if batch_name is None:
                    return None
                group_columns.append(batch_name)
            for spec in node.aggregates:
                if spec.argument is not None and not batch_supported(spec.argument, names):
                    return None
            out = tuple(node.group_by) + tuple(s.name for s in node.aggregates)
            if len(set(out)) != len(out):
                return None  # colliding output names corrupt any columnar layout
            stages.append(
                _AggStage(tuple(node.group_by), tuple(group_columns), tuple(node.aggregates))
            )
            names = out

    pipeline = _Pipeline(
        core=core,
        stages=stages,
        leaf_ops=leaf_ops,
        out_names=names,
        hook=hook,
        signature="",
        fused_nodes=fused,
    )
    pipeline.signature = _signature(pipeline)
    return pipeline


def _band_hook(
    planner: Any,
    inner_plan: LogicalPlan,
    dimensions: Sequence[tuple[str, Expression, Expression]],
) -> Callable[[int, float, int], None] | None:
    """Replicate ``PhysicalPlanner._attach_band_hook`` for a fused band join."""
    if planner.index_advisor is None:
        return None
    info = inner_scan_info(planner.catalog, inner_plan)
    if info is None:
        return None
    table, _, _ = info
    try:
        columns = tuple(
            table.schema.resolve(column.split(".")[-1]) for column, _, _ in dimensions
        )
    except SchemaError:
        return None
    return planner.index_advisor.make_hook(table.name, columns)


def _signature(pipeline: _Pipeline) -> str:
    """A structural signature of the analyzed pipeline.

    Joins the cache key alongside the MQO fingerprint: the fingerprint
    canonicalizes conjunct order, while generated code preserves *this
    instance's* evaluation and probe order, so two fingerprint-equal plans
    with different in-memory shapes must not share a kernel.
    """
    parts: list[str] = [type(pipeline.core).__name__]
    for op in pipeline.leaf_ops:
        parts.append(",".join(op.names))
    core = pipeline.core
    if isinstance(core, (_EquiCore, _BandCore)):
        parts.append(";".join(repr(e) for e in core.left_filters))
        parts.append(";".join(repr(e) for e in core.right_filters))
        parts.append(";".join(repr(e) for e in core.residual))
    if isinstance(core, _EquiCore):
        parts.append(";".join(repr(e) for e in core.left_keys))
        parts.append(";".join(repr(e) for e in core.right_keys))
    if isinstance(core, _BandCore):
        parts.append(
            ";".join(f"{c}>={lo!r}&<={hi!r}" for c, lo, hi in core.dimensions)
        )
    for stage in pipeline.stages:
        if isinstance(stage, _FilterStage):
            parts.append("σ" + ";".join(repr(c) for c in stage.conjuncts))
        elif isinstance(stage, _ProjectStage):
            parts.append(
                "π" + ";".join(f"{n}={e!r}" for n, e in stage.projections)
            )
        else:
            parts.append(
                "γ"
                + ",".join(stage.group_names)
                + "/"
                + ",".join(stage.group_columns)
                + "|"
                + ";".join(s.label() for s in stage.aggregates)
            )
    parts.append(",".join(pipeline.out_names))
    return "\x1f".join(parts)


# -- row contexts ----------------------------------------------------------------------------


def _scan_columns(batch: ColumnBatch, names: tuple[str, ...]) -> list[list]:
    """Dense value lists (in selection order) for the named columns.

    Scan-core kernels iterate ``zip()`` over these instead of subscripting
    per row — for the common dense table batch this is a zero-copy view of
    the column lists; selected or virtual columns are gathered once.
    """
    cols = [batch.columns[name] for name in names]
    if batch.selection is None and all(type(c) is list for c in cols):
        return cols
    idx = batch.indices()
    return [[c[i] for i in idx] for c in cols]


class _ZipRowCtx:
    """Row access for the scan core's zip loop: every used column becomes
    a loop variable bound in the (patched-in) loop header."""

    def __init__(self, names: tuple[str, ...], cg: "_Codegen"):
        self.names = names
        self.cg = cg
        self.used: list[tuple[str, str]] = []  # (column, loop var) in first-use order
        self._vars: dict[str, str] = {}

    def fragment(self, name: str) -> str:
        var = self._vars.get(name)
        if var is None:
            var = self.cg.b.temp("_r")
            self._vars[name] = var
            self.used.append((name, var))
        return var

    def out_fragment(self, k: int) -> str:
        return self.fragment(self.names[k])


class _BatchCtx:
    """Column access over one input batch at a loop index variable."""

    def __init__(self, names: tuple[str, ...], input_idx: int, index_var: str, cg: "_Codegen"):
        self.names = names
        self.input_idx = input_idx
        self.index_var = index_var
        self.cg = cg

    def fragment(self, name: str) -> str:
        return f"{self.cg.col_var(self.input_idx, name)}[{self.index_var}]"

    def out_fragment(self, k: int) -> str:
        return self.fragment(self.names[k])


class _PairCtx:
    """Column access over a (left row, right row) join pair.

    Duplicate names resolve to the right side, matching row-dict merge
    (right update wins) and the batch join's column-dict gather.
    """

    def __init__(self, left: _BatchCtx, right: _BatchCtx):
        self.left = left
        self.right = right
        self.names = left.names + right.names
        self._right_set = set(right.names)

    def fragment(self, name: str) -> str:
        if name in self._right_set:
            return self.right.fragment(name)
        return self.left.fragment(name)

    def out_fragment(self, k: int) -> str:
        if k < len(self.left.names):
            return self.left.fragment(self.left.names[k])
        return self.right.fragment(self.right.names[k - len(self.left.names)])


class _LocalCtx:
    """Access over locals bound by a Project or Aggregate stage."""

    def __init__(self, names: tuple[str, ...], frags: list[str]):
        self.names = names
        self.frags = frags
        # Right-wins for duplicate names, like dict construction would.
        self._by_name: dict[str, str] = {}
        for name, frag in zip(names, frags):
            self._by_name[name] = frag

    def fragment(self, name: str) -> str:
        try:
            return self._by_name[name]
        except KeyError:
            raise KernelDecline(name) from None

    def out_fragment(self, k: int) -> str:
        return self.frags[k]


# -- code generation -------------------------------------------------------------------------

#: Aggregates folded with inline running state; everything else gathers
#: the group's values and defers to ``_fold_values`` (exact batch-path
#: semantics either way).
_INLINE_AGGS = ("count", "sum", "min", "max")


class _Codegen:
    """Emits the fused kernel function for one analyzed pipeline."""

    def __init__(self, pipeline: _Pipeline):
        self.p = pipeline
        self.b = SourceBuilder()
        self.head: list[str] = []
        self.lines: list[str] = []
        self.indent = 1
        self._col_cache: dict[tuple[int, str], str] = {}
        #: Row variables proven non-None by an enclosing filter guard —
        #: later aggregate updates on them skip the null re-check.
        self.non_null: set[str] = set()

    # -- emission helpers --------------------------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def head_line(self, text: str) -> None:
        self.head.append("    " + text)

    def col_var(self, input_idx: int, name: str) -> str:
        """Hoist one input column list into a local, on first use."""
        key = (input_idx, name)
        var = self._col_cache.get(key)
        if var is None:
            var = self.b.temp("_col")
            self._col_cache[key] = var
            self.head_line(f"{var} = _in{input_idx}.columns[{name!r}]")
        return var

    def gen(self, ctx: Any) -> ExprGen:
        def resolver(node: Any) -> str:
            if isinstance(node, Variable):
                # Variables bind by exact key only (compile_batch semantics).
                if node.name not in ctx.names:
                    raise KernelDecline(node.name)
                return ctx.fragment(node.name)
            resolved = resolve_batch_column(node.name, ctx.names)
            if resolved is None:
                raise KernelDecline(node.name)
            return ctx.fragment(resolved)

        return ExprGen(resolver, self.b)

    def emit_filters(self, ctx: Any, conjuncts: Sequence[Expression]) -> None:
        # Positive nesting (rather than `if not ...: continue`) saves the
        # negation on every row; everything downstream indents deeper.
        gen = self.gen(ctx)
        for conjunct in conjuncts:
            self.line(f"if {gen.boolean(conjunct)}:")
            self.indent += 1
            self.non_null.update(gen.proved_non_null)

    # -- cores -------------------------------------------------------------------------------

    def emit_core(self) -> Any:
        core = self.p.core
        if isinstance(core, _ScanCore):
            return self._emit_scan_core()
        if isinstance(core, _EquiCore):
            return self._emit_equi_core(core)
        return self._emit_band_core(core)

    def _emit_scan_core(self) -> _ZipRowCtx:
        # The loop header is patched in at assembly time, once the body has
        # revealed which columns the pipeline actually reads.
        self._scan_marker = len(self.lines)
        self.lines.append("")
        self.indent += 1
        return _ZipRowCtx(tuple(self.p.leaf_ops[0].names), self)

    def _patch_scan_header(self, ctx: _ZipRowCtx) -> None:
        used = ctx.used
        header: list[str]
        if not used:
            header = ["for _ in range(len(_in0)):"]
        else:
            dense = self.b.temp("_dc")
            cols = ", ".join(repr(name) for name, _ in used)
            header = [f"{dense} = _scan_cols(_in0, ({cols},))"]
            if len(used) == 1:
                header.append(f"for {used[0][1]} in {dense}[0]:")
            else:
                target = ", ".join(var for _, var in used)
                sources = ", ".join(f"{dense}[{k}]" for k in range(len(used)))
                header.append(f"for {target} in zip({sources}):")
        self.lines[self._scan_marker] = "\n".join("    " + h for h in header)

    def _emit_equi_core(self, core: _EquiCore) -> _PairCtx:
        build = self.b.temp("_bld")
        bget = self.b.temp("_bget")
        self.head_line(f"{build} = {{}}")
        self.head_line(f"{bget} = {build}.get")
        right_ctx = _BatchCtx(tuple(self.p.leaf_ops[1].names), 1, "_j", self)
        left_ctx = _BatchCtx(tuple(self.p.leaf_ops[0].names), 0, "_i", self)

        # Build side: right input in order, skipping null keys.
        self.line("for _j in _in1.indices():")
        self.indent += 1
        self.emit_filters(right_ctx, core.right_filters)
        rgen = self.gen(right_ctx)
        key_vars = []
        for key in core.right_keys:
            var = self.b.temp("_k")
            self.line(f"{var} = {rgen.value(key)}")
            self.line(f"if {var} is None: continue")
            key_vars.append(var)
        key_tuple = "(" + ", ".join(key_vars) + ("," if len(key_vars) == 1 else "") + ")"
        bucket = self.b.temp("_bkt")
        self.line(f"{bucket} = {bget}({key_tuple})")
        self.line(f"if {bucket} is None:")
        self.indent += 1
        self.line(f"{bucket} = {build}[{key_tuple}] = []")
        self.indent -= 1
        self.line(f"{bucket}.append(_j)")
        self.indent = 1

        # Probe side: left input in order, matches in build order.
        self.line("for _i in _in0.indices():")
        self.indent += 1
        self.emit_filters(left_ctx, core.left_filters)
        lgen = self.gen(left_ctx)
        probe_vars = []
        for key in core.left_keys:
            var = self.b.temp("_q")
            self.line(f"{var} = {lgen.value(key)}")
            self.line(f"if {var} is None: continue")
            probe_vars.append(var)
        probe_tuple = "(" + ", ".join(probe_vars) + ("," if len(probe_vars) == 1 else "") + ")"
        matches = self.b.temp("_m")
        self.line(f"{matches} = {bget}({probe_tuple})")
        self.line(f"if {matches} is None: continue")
        self.line(f"for _j in {matches}:")
        self.indent += 1
        pair = _PairCtx(left_ctx, right_ctx)
        self.emit_filters(pair, core.residual)
        return pair

    def _emit_band_core(self, core: _BandCore) -> _PairCtx:
        """Replicates ``RangeProbeJoinOp._produce`` including probe stats."""
        dims = core.dimensions
        nd = len(dims)
        left_ctx = _BatchCtx(tuple(self.p.leaf_ops[0].names), 0, "_i", self)
        right_ctx = _BatchCtx(tuple(self.p.leaf_ops[1].names), 1, "_j", self)
        self.head_line("_np = 0")
        self.head_line("_ws = 0.0")
        self.head_line("_wc = 0")

        lsel = self.b.temp("_ls")
        if core.left_filters:
            self.head_line(f"{lsel} = []")
            self.head_line(f"{lsel}a = {lsel}.append")
            self.line("for _i in _in0.indices():")
            self.indent += 1
            self.emit_filters(left_ctx, core.left_filters)
            self.line(f"{lsel}a(_i)")
            self.indent = 1
        else:
            self.line(f"{lsel} = _in0.indices()")

        rsel = self.b.temp("_rs")
        if core.right_filters:
            self.head_line(f"{rsel} = []")
            self.head_line(f"{rsel}a = {rsel}.append")
            self.line("for _j in _in1.indices():")
            self.indent += 1
            self.emit_filters(right_ctx, core.right_filters)
            self.line(f"{rsel}a(_j)")
            self.indent = 1
        else:
            self.line(f"{rsel} = _in1.indices()")

        self.line(f"if {lsel} and {rsel}:")
        self.indent = 2

        # Cell size from the probe-width sample (zero-width probes excluded).
        widths = self.b.temp("_w")
        self.line(f"{widths} = []")
        self.line(f"for _i in {lsel}[:32]:")
        self.indent = 3
        wgen = self.gen(left_ctx)
        for _, low_expr, high_expr in dims:
            low = self.b.temp("_lo")
            high = self.b.temp("_hi")
            self.line(f"{low} = {wgen.value(low_expr)}")
            self.line(f"{high} = {wgen.value(high_expr)}")
            self.line(
                f"if {low} is not None and {high} is not None and {high} > {low}: "
                f"{widths}.append(float({high}) - float({low}))"
            )
        self.indent = 2
        cell = self.b.temp("_cs")
        self.line(f"{cell} = (sum({widths}) / len({widths})) if {widths} else 1.0")

        # Transient grid over the right side, insertion in right-row order.
        grid = self.b.temp("_grid")
        gget = self.b.temp("_gget")
        self.line(f"{grid} = {{}}")
        self.line(f"{gget} = {grid}.get")
        self.line(f"for _j in {rsel}:")
        self.indent = 3
        coord_vars = []
        for column, _, _ in dims:
            var = self.b.temp("_x")
            self.line(f"{var} = {right_ctx.fragment(column)}")
            self.line(f"if {var} is None: continue")
            self.line(f"{var} = float({var})")
            coord_vars.append(var)
        cell_key = (
            "("
            + ", ".join(f"int({v} // {cell})" for v in coord_vars)
            + ("," if nd == 1 else "")
            + ")"
        )
        bucket = self.b.temp("_bkt")
        self.line(f"{bucket} = {gget}({cell_key})")
        self.line(f"if {bucket} is None:")
        self.indent = 4
        self.line(f"{bucket} = {grid}[{cell_key}] = []")
        self.indent = 3
        self.line(f"{bucket}.append((" + ", ".join(coord_vars) + ", _j))")
        self.indent = 2

        # Probe loop: left rows in order; cells row-major within a probe box.
        self.line(f"for _i in {lsel}:")
        self.indent = 3
        pgen = self.gen(left_ctx)
        lo_f, hi_f, lo_c, hi_c = [], [], [], []
        for _, low_expr, high_expr in dims:
            low = self.b.temp("_lo")
            high = self.b.temp("_hi")
            self.line(f"{low} = {pgen.value(low_expr)}")
            self.line(f"{high} = {pgen.value(high_expr)}")
            self.line(f"if {low} is None or {high} is None or {high} < {low}: continue")
            lof = self.b.temp("_lf")
            hif = self.b.temp("_hf")
            self.line(f"{lof} = float({low})")
            self.line(f"{hif} = float({high})")
            lo_f.append(lof)
            hi_f.append(hif)
        self.line("_np += 1")
        for lof, hif in zip(lo_f, hi_f):
            self.line(f"_ws += {hif} - {lof}")
        self.line(f"_wc += {nd}")
        for lof, hif in zip(lo_f, hi_f):
            lcv = self.b.temp("_lc")
            hcv = self.b.temp("_hc")
            self.line(f"{lcv} = int({lof} // {cell})")
            self.line(f"{hcv} = int({hif} // {cell})")
            lo_c.append(lcv)
            hi_c.append(hcv)
        box = self.b.temp("_bx")
        self.line(
            f"{box} = " + " * ".join(f"({h} - {l} + 1)" for l, h in zip(lo_c, hi_c))
        )
        cells = self.b.temp("_cl")
        self.line(f"if {box} <= len({grid}):")
        self.indent = 4
        gen_tuple = "(" + ", ".join(f"_d{d}" for d in range(nd)) + ("," if nd == 1 else "") + ")"
        gen_loops = " ".join(
            f"for _d{d} in range({lo_c[d]}, {hi_c[d]} + 1)" for d in range(nd)
        )
        self.line(f"{cells} = ({gen_tuple} {gen_loops})")
        self.indent = 3
        self.line("else:")
        self.indent = 4
        in_range = " and ".join(
            f"{lo_c[d]} <= _ck[{d}] <= {hi_c[d]}" for d in range(nd)
        )
        self.line(f"{cells} = [_ck for _ck in {grid} if {in_range}]")
        self.indent = 3
        self.line(f"for _ck in {cells}:")
        self.indent = 4
        probe_bucket = self.b.temp("_pb")
        self.line(f"{probe_bucket} = {gget}(_ck)")
        self.line(f"if {probe_bucket} is None: continue")
        self.line(f"for _e in {probe_bucket}:")
        self.indent = 5
        bounds_check = " and ".join(
            f"{lo_f[d]} <= _e[{d}] <= {hi_f[d]}" for d in range(nd)
        )
        self.line(f"if not ({bounds_check}): continue")
        self.line(f"_j = _e[{nd}]")
        pair = _PairCtx(left_ctx, right_ctx)
        self.emit_filters(pair, core.residual)
        return pair

    # -- stages ------------------------------------------------------------------------------

    def emit_stage(self, stage: Any, ctx: Any) -> Any:
        if isinstance(stage, _FilterStage):
            self.emit_filters(ctx, stage.conjuncts)
            return ctx
        if isinstance(stage, _ProjectStage):
            gen = self.gen(ctx)
            frags: list[str] = []
            for _name, expr in stage.projections:
                src = gen.value(expr)
                if src.isidentifier():
                    frags.append(src)
                    continue
                var = self.b.temp("_p")
                self.line(f"{var} = {src}")
                frags.append(var)
            return _LocalCtx(tuple(n for n, _ in stage.projections), frags)
        return self._emit_aggregate(stage, ctx)

    def _emit_aggregate(self, stage: _AggStage, ctx: Any) -> _LocalCtx:
        grouped = bool(stage.group_columns)
        gen = self.gen(ctx)

        def identity(spec: AggregateSpec) -> str:
            if spec.argument is None or spec.func == "count":
                return "0"
            if spec.func in ("sum", "min", "max"):
                return "None"
            return "[]"

        # Bind aggregate input values first (they are pure, so evaluating
        # them before the group lookup is unobservable) — knowing which are
        # provably non-None picks cheaper identities below.  Structurally
        # identical arguments share one binding.
        values: list[tuple[str, bool]] = []
        memo: dict[str, tuple[str, bool]] = {}
        for spec in stage.aggregates:
            if spec.argument is None:
                values.append(("", True))
                continue
            arg_key = repr(spec.argument)
            if arg_key in memo:
                values.append(memo[arg_key])
                continue
            value_src = gen.value(spec.argument)
            if value_src.isidentifier():
                value = value_src
            else:
                value = self.b.temp("_v")
                self.line(f"{value} = {value_src}")
            memo[arg_key] = (value, value in self.non_null)
            values.append(memo[arg_key])

        # When every argument-taking aggregate reads the same value, gather
        # it into one per-group list (a single dict op + append per row —
        # the cheapest possible accumulation) and fold at C speed in the
        # epilogue.  This is the interpreted batch aggregate's own
        # gather-then-fold algorithm minus its per-spec overhead, so
        # equivalence is structural.
        arg_frags = {v for spec, (v, _) in zip(stage.aggregates, values) if spec.argument is not None}
        if len(arg_frags) == 1:
            return self._emit_gather_aggregate(stage, ctx, values, arg_frags.pop())

        def slot_identity(spec: AggregateSpec, *, known: bool) -> str:
            # A group's state only exists once a row reached it, so a sum
            # whose input is proven non-None can accumulate from 0 — the
            # all-NULL case (None folded to 0 on output) cannot occur.
            if spec.func == "sum" and known:
                return "0"
            return identity(spec)

        # One mutable state list per group, indexed by constant aggregate
        # position — the hot accumulation path touches a single dict entry
        # (or none at all when ungrouped) instead of parallel arrays.
        state = self.b.temp("_st")
        identities = "[" + ", ".join(
            slot_identity(s, known=known) for s, (_, known) in zip(stage.aggregates, values)
        ) + "]"
        if grouped:
            groups = self.b.temp("_g")
            keys = self.b.temp("_ky")
            self.head_line(f"{groups} = {{}}")
            self.head_line(f"{keys} = []")
            # Group key: single column raw, multi column tuple (batch-path form).
            if len(stage.group_columns) == 1:
                key_frag = ctx.fragment(stage.group_columns[0])
            else:
                key_frag = "(" + ", ".join(ctx.fragment(c) for c in stage.group_columns) + ")"
            if key_frag.isidentifier():
                key_var = key_frag
            else:
                key_var = self.b.temp("_kv")
                self.line(f"{key_var} = {key_frag}")
            # Group hit is the hot case: a plain subscript beats .get(),
            # and the KeyError branch runs once per distinct group.
            self.line("try:")
            self.indent += 1
            self.line(f"{state} = {groups}[{key_var}]")
            self.indent -= 1
            self.line("except KeyError:")
            self.indent += 1
            self.line(f"{state} = {groups}[{key_var}] = {identities}")
            self.line(f"{keys}.append({key_var})")
            self.indent -= 1
        else:
            keys = ""
            self.head_line(f"{state} = {identities}")

        for slot, (spec, (value, known)) in enumerate(zip(stage.aggregates, values)):
            if spec.argument is None:
                # The row path feeds the constant 1 to no-arg aggregates.
                self.line(f"{state}[{slot}] += 1")
                continue
            if spec.func == "count":
                if known:
                    self.line(f"{state}[{slot}] += 1")
                else:
                    self.line(f"if {value} is not None: {state}[{slot}] += 1")
            elif spec.func == "sum":
                if known:
                    self.line(f"{state}[{slot}] += {value}")
                    continue
                self.line(f"if {value} is not None:")
                self.indent += 1
                old = self.b.temp("_ac")
                self.line(f"{old} = {state}[{slot}]")
                self.line(f"{state}[{slot}] = {value} if {old} is None else {old} + {value}")
                self.indent -= 1
            elif spec.func in ("min", "max"):
                cmp_op = "<" if spec.func == "min" else ">"
                if not known:
                    self.line(f"if {value} is not None:")
                    self.indent += 1
                old = self.b.temp("_ac")
                self.line(f"{old} = {state}[{slot}]")
                self.line(f"if {old} is None or {value} {cmp_op} {old}: {state}[{slot}] = {value}")
                if not known:
                    self.indent -= 1
            else:
                self.line(f"{state}[{slot}].append({value})")

        # Close every loop below: groups stream out at function level, in
        # first-seen order (one identity row for a global aggregate).
        self.indent = 1
        frags: list[str] = []
        if grouped:
            key_out = self.b.temp("_kv")
            self.line(f"for {key_out} in {keys}:")
            self.indent = 2
            self.line(f"{state} = {groups}[{key_out}]")
            if len(stage.group_columns) == 1:
                frags.append(key_out)
            else:
                frags.extend(f"{key_out}[{d}]" for d in range(len(stage.group_columns)))
        for slot, spec in enumerate(stage.aggregates):
            if spec.argument is None and spec.func != "count":
                out = self.b.temp("_av")
                self.line(f"{out} = _fold({spec.func!r}, [1] * {state}[{slot}])")
            elif spec.func == "sum":
                out = self.b.temp("_av")
                self.line(f"{out} = {state}[{slot}]")
                self.line(f"if {out} is None: {out} = 0")
            elif spec.func in _INLINE_AGGS:
                out = f"{state}[{slot}]"
            else:
                out = self.b.temp("_av")
                self.line(f"{out} = _fold({spec.func!r}, {state}[{slot}])")
            frags.append(out)
        names = stage.group_names + tuple(s.name for s in stage.aggregates)
        return _LocalCtx(names, frags)

    def _emit_gather_aggregate(
        self, stage: _AggStage, ctx: Any, values: list[tuple[str, bool]], gathered: str
    ) -> _LocalCtx:
        """Single-gather-list aggregation: one dict op + append per row.

        Applicable when all argument-taking aggregates read the same value;
        the gathered list then serves every spec — ``len`` for row counts,
        C-speed ``sum``/``min``/``max`` for proven-non-None inputs, and the
        interpreted path's own ``_fold`` for everything else (which makes
        the fold semantics equal by construction).
        """
        grouped = bool(stage.group_columns)
        lst = self.b.temp("_ls")
        if grouped:
            groups = self.b.temp("_g")
            keys = self.b.temp("_ky")
            self.head_line(f"{groups} = {{}}")
            self.head_line(f"{keys} = []")
            # Group key: single column raw, multi column tuple (batch-path form).
            if len(stage.group_columns) == 1:
                key_frag = ctx.fragment(stage.group_columns[0])
            else:
                key_frag = "(" + ", ".join(ctx.fragment(c) for c in stage.group_columns) + ")"
            if key_frag.isidentifier():
                key_var = key_frag
            else:
                key_var = self.b.temp("_kv")
                self.line(f"{key_var} = {key_frag}")
            self.line("try:")
            self.indent += 1
            self.line(f"{groups}[{key_var}].append({gathered})")
            self.indent -= 1
            self.line("except KeyError:")
            self.indent += 1
            self.line(f"{groups}[{key_var}] = [{gathered}]")
            self.line(f"{keys}.append({key_var})")
            self.indent -= 1
        else:
            self.head_line(f"{lst} = []")
            self.line(f"{lst}.append({gathered})")

        # Epilogue: groups stream out in first-seen order (one row for a
        # global aggregate, whose list may be empty).
        self.indent = 1
        frags: list[str] = []
        if grouped:
            key_out = self.b.temp("_kv")
            self.line(f"for {key_out} in {keys}:")
            self.indent = 2
            self.line(f"{lst} = {groups}[{key_out}]")
            if len(stage.group_columns) == 1:
                frags.append(key_out)
            else:
                frags.extend(f"{key_out}[{d}]" for d in range(len(stage.group_columns)))
        for spec, (value, known) in zip(stage.aggregates, values):
            out = self.b.temp("_av")
            if spec.argument is None:
                # The row path feeds the constant 1 to no-arg aggregates.
                if spec.func == "count":
                    self.line(f"{out} = len({lst})")
                else:
                    self.line(f"{out} = _fold({spec.func!r}, [1] * len({lst}))")
            elif known and spec.func == "count":
                self.line(f"{out} = len({lst})")
            elif known and spec.func == "sum":
                self.line(f"{out} = sum({lst})")
            elif known and spec.func in ("min", "max"):
                if grouped:
                    self.line(f"{out} = {spec.func}({lst})")
                else:
                    # A global aggregate still emits its row when no input
                    # rows survived; min/max of nothing is NULL.
                    self.line(f"{out} = {spec.func}({lst}) if {lst} else None")
            else:
                self.line(f"{out} = _fold({spec.func!r}, {lst})")
            frags.append(out)
        names = stage.group_names + tuple(s.name for s in stage.aggregates)
        return _LocalCtx(names, frags)

    # -- output ------------------------------------------------------------------------------

    def emit_output(self, ctx: Any) -> None:
        out_names = self.p.out_names
        last_pos = {name: k for k, name in enumerate(out_names)}
        for k, name in enumerate(out_names):
            if last_pos[name] != k:
                continue  # duplicate column: a later position wins in the dict
            self.head_line(f"_o{k} = []")
            self.head_line(f"_o{k}a = _o{k}.append")
            self.line(f"_o{k}a({ctx.out_fragment(k)})")
        self.indent = 1
        if isinstance(self.p.core, _BandCore):
            self.line("if __hook is not None: __hook(_np, _ws, _wc)")
        items = ", ".join(
            f"{name!r}: _o{k}" for k, name in enumerate(out_names) if last_pos[name] == k
        )
        self.line(f"return _ColumnBatch(__names, {{{items}}})")

    # -- assembly ----------------------------------------------------------------------------

    def compile(self) -> KernelProgram:
        for i in range(len(self.p.leaf_ops)):
            self.head_line(f"_in{i} = __inputs[{i}]")
        ctx = self.emit_core()
        scan_ctx = ctx if isinstance(ctx, _ZipRowCtx) else None
        for stage in self.p.stages:
            ctx = self.emit_stage(stage, ctx)
        self.emit_output(ctx)
        if scan_ctx is not None:
            self._patch_scan_header(scan_ctx)
        source = (
            "def __kernel(__inputs, __hook=None):\n"
            + "\n".join(self.head + self.lines)
            + "\n"
        )
        env = dict(self.b.env)
        env["_ColumnBatch"] = ColumnBatch
        env["_fold"] = _fold_values
        env["_scan_cols"] = _scan_columns
        env["__names"] = tuple(self.p.out_names)
        exec(compile(source, "<repro-kernel>", "exec"), env)
        return KernelProgram(
            source=source,
            fn=env["__kernel"],
            names=tuple(self.p.out_names),
            n_inputs=len(self.p.leaf_ops),
            uses_hook=isinstance(self.p.core, _BandCore),
            fused_nodes=self.p.fused_nodes,
        )


# -- the lowering hook -----------------------------------------------------------------------


class KernelLowering:
    """The planner-side hook that serves fused kernels during lowering.

    Installed on :class:`PhysicalPlanner` (``kernel_lowering`` attribute)
    by the executor when compilation is enabled; :meth:`lower` is called
    for every plan the planner lowers, returning a bridged kernel or
    ``None`` to continue with the interpreted paths.  Programs are cached
    in the executor-owned ``cache`` dict, keyed by the MQO fingerprint
    plus the structural signature, and dropped with the plan cache on
    catalog-shape changes.
    """

    def __init__(self, cache: dict[Any, KernelProgram] | None = None):
        self.cache: dict[Any, KernelProgram] = cache if cache is not None else {}
        self.compiled = 0
        self.hits = 0
        self.declined = 0

    def lower(self, plan: LogicalPlan, planner: Any) -> BatchBridgeOp | None:
        if not isinstance(plan, (Select, Project, Aggregate, Join)):
            return None
        try:
            pipeline = _analyze(plan, planner)
        except (KernelDecline, Exception):
            pipeline = None
        if pipeline is None:
            self.declined += 1
            return None
        key = self._cache_key(plan, pipeline)
        program = self.cache.get(key) if key is not None else None
        if program is None:
            try:
                program = _Codegen(pipeline).compile()
            except Exception:
                self.declined += 1
                return None
            if key is not None:
                self.cache[key] = program
            self.compiled += 1
        else:
            self.hits += 1
        schema = plan.output_schema(planner.catalog)
        op = KernelOp(schema, program, tuple(pipeline.leaf_ops), pipeline.hook)
        return BatchBridgeOp(op, schema)

    def _cache_key(self, plan: LogicalPlan, pipeline: _Pipeline) -> tuple | None:
        try:
            fingerprint, aliases = fingerprint_plan(plan)
        except Exception:
            return None
        renames = tuple(
            tuple(sorted(node.alias_renames.items()))
            for node in plan.walk()
            if isinstance(node, SharedScan)
        )
        return (fingerprint, aliases, renames, pipeline.signature)
