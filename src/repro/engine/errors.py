"""Exception hierarchy for the main-memory relational engine.

Every error raised by :mod:`repro.engine` derives from :class:`EngineError`,
so callers embedding the engine (the SGL runtime, the benchmark harness)
can catch one base class.  The hierarchy mirrors the stages of query
processing: schema definition, catalog management, expression evaluation,
planning/optimization, and execution.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all errors raised by the relational engine."""


class SchemaError(EngineError):
    """A schema is malformed, or an operation refers to unknown columns."""


class TypeMismatchError(SchemaError):
    """A value does not conform to the declared column type."""


class CatalogError(EngineError):
    """A table or index name is unknown or already registered."""


class ExpressionError(EngineError):
    """A scalar expression is malformed or cannot be evaluated."""


class PlanError(EngineError):
    """A logical or physical plan is structurally invalid."""


class OptimizerError(EngineError):
    """The optimizer could not produce a plan for a query."""


class ExecutionError(EngineError):
    """A runtime failure while executing a physical plan."""


class IndexError_(EngineError):
    """An index operation failed (duplicate key, unknown entry, bad bounds).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class ConstraintViolation(EngineError):
    """A table- or transaction-level constraint was violated."""


class ConcurrencyError(EngineError):
    """Conflicting writes were detected outside an effect-combination phase."""
