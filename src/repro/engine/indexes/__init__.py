"""Index structures for the main-memory engine.

All indexes implement the :class:`repro.engine.table.TableIndex` protocol
(insert/delete/update notifications plus ``lookup`` and ``range_search``),
so physical operators and the planner can treat them interchangeably:

* :class:`HashIndex` — equality lookups on one or more columns.
* :class:`SortedIndex` — one-dimensional range scans.
* :class:`GridIndex` — uniform spatial grid, O(1) maintenance for
  continuously moving objects.
* :class:`KdTreeIndex` — linear-space spatial tree.
* :class:`RangeTreeIndex` — the paper's orthogonal range tree with
  Θ(n log^{d-1} n) space (Section 4.2).
"""

from repro.engine.indexes.grid_index import GridIndex
from repro.engine.indexes.hash_index import HashIndex
from repro.engine.indexes.kdtree import KdTreeIndex
from repro.engine.indexes.range_tree import RangeTreeIndex
from repro.engine.indexes.sorted_index import SortedIndex

__all__ = ["HashIndex", "SortedIndex", "GridIndex", "KdTreeIndex", "RangeTreeIndex"]
