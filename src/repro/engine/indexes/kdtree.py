"""k-d tree spatial index.

An alternative to the orthogonal range tree (Section 4.2) with linear
space and O(n^{1-1/d} + k) range query time.  Experiment E6 compares the
two structures' memory footprint and query cost — the range tree trades a
Θ(log^{d-1} n) space blow-up for asymptotically faster queries, which is
exactly the trade-off that motivates partitioning indices across cluster
nodes in the paper.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.engine.table import RowId, Table, TableIndex

__all__ = ["KdTreeIndex"]


class _KdNode:
    __slots__ = ("point", "payload", "axis", "left", "right")

    def __init__(self, point: tuple[float, ...], payload: Any, axis: int):
        self.point = point
        self.payload = payload
        self.axis = axis
        self.left: "_KdNode | None" = None
        self.right: "_KdNode | None" = None


class KdTreeIndex(TableIndex):
    """A k-d tree over *d* numeric columns, rebuilt lazily on mutation."""

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("kd-tree needs at least one column")
        self.columns = tuple(columns)
        self._table: Table | None = None
        self._root: _KdNode | None = None
        self._dirty = True
        self._size = 0

    # -- TableIndex protocol ----------------------------------------------------------

    def on_insert(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        self._dirty = True

    def on_delete(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        self._dirty = True

    def on_update(self, rowid: RowId, old: Mapping[str, Any], new: Mapping[str, Any]) -> None:
        self._dirty = True

    def rebuild(self, table: Table) -> None:
        self.columns = tuple(table.schema.resolve(c) for c in self.columns)
        self._table = table
        self._dirty = True

    # -- building -----------------------------------------------------------------------

    def _ensure_built(self) -> None:
        if not self._dirty or self._table is None:
            return
        points: list[tuple[tuple[float, ...], RowId]] = []
        for rowid in self._table.row_ids():
            row = self._table.get(rowid)
            coords = []
            ok = True
            for column in self.columns:
                value = row[column]
                if value is None:
                    ok = False
                    break
                coords.append(float(value))
            if ok:
                points.append((tuple(coords), rowid))
        self.build_from_points(points)

    def build_from_points(self, points: Sequence[tuple[Sequence[float], Any]]) -> None:
        """Bulk-build the tree from ``(coords, payload)`` pairs."""
        normalized = [(tuple(float(c) for c in coords), payload) for coords, payload in points]
        self._size = len(normalized)
        self._root = self._build(normalized, 0)
        self._dirty = False

    def _build(self, points: list[tuple[tuple[float, ...], Any]], depth: int) -> _KdNode | None:
        if not points:
            return None
        axis = depth % len(self.columns)
        points.sort(key=lambda p: p[0][axis])
        mid = len(points) // 2
        point, payload = points[mid]
        node = _KdNode(point, payload, axis)
        node.left = self._build(points[:mid], depth + 1)
        node.right = self._build(points[mid + 1 :], depth + 1)
        return node

    # -- queries --------------------------------------------------------------------------

    def lookup(self, key: Any) -> Iterator[RowId]:
        if not isinstance(key, tuple):
            key = (key,)
        bounds = [(k, k) for k in key]
        yield from self.range_search(bounds)

    def range_search(self, bounds: Sequence[tuple[Any, Any]]) -> Iterator[RowId]:
        self._ensure_built()
        normalized: list[tuple[float | None, float | None]] = []
        for low, high in bounds:
            normalized.append(
                (None if low is None else float(low), None if high is None else float(high))
            )
        while len(normalized) < len(self.columns):
            normalized.append((None, None))
        yield from self._search(self._root, normalized)

    def _search(
        self, node: _KdNode | None, bounds: Sequence[tuple[float | None, float | None]]
    ) -> Iterator[RowId]:
        if node is None:
            return
        inside = True
        for value, (low, high) in zip(node.point, bounds):
            if low is not None and value < low:
                inside = False
                break
            if high is not None and value > high:
                inside = False
                break
        if inside:
            yield node.payload
        axis = node.axis
        low, high = bounds[axis]
        if low is None or node.point[axis] >= low:
            yield from self._search(node.left, bounds)
        if high is None or node.point[axis] <= high:
            yield from self._search(node.right, bounds)

    def nearest(self, coords: Sequence[float]) -> Any | None:
        """Return the payload of the point nearest to *coords* (L2 distance)."""
        self._ensure_built()
        best: list[Any] = [None, float("inf")]
        target = tuple(float(c) for c in coords)

        def visit(node: _KdNode | None) -> None:
            if node is None:
                return
            dist = sum((a - b) ** 2 for a, b in zip(node.point, target))
            if dist < best[1]:
                best[0], best[1] = node.payload, dist
            axis = node.axis
            diff = target[axis] - node.point[axis]
            near, far = (node.left, node.right) if diff <= 0 else (node.right, node.left)
            visit(near)
            if diff * diff < best[1]:
                visit(far)

        visit(self._root)
        return best[0]

    # -- accounting -------------------------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_built()
        return self._size

    def node_count(self) -> int:
        """Number of stored nodes (equal to the number of points: linear space)."""
        self._ensure_built()
        return self._size

    def estimated_bytes(self, entry_size: int = 16) -> int:
        """Estimated memory assuming *entry_size* bytes per stored entry."""
        return self.node_count() * entry_size
