"""Sorted (one-dimensional) index supporting range scans."""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.table import RowId, Table, TableIndex

__all__ = ["SortedIndex"]


class SortedIndex(TableIndex):
    """Keeps ``(value, rowid)`` pairs sorted by value on a single column.

    Uses :mod:`bisect` for O(log n) positioning; inserts and deletes are
    O(n) due to the underlying list, which is acceptable for the workload
    sizes the engine targets and keeps the structure simple and cache
    friendly.
    """

    def __init__(self, column: str):
        self.columns = (column,)
        self._entries: list[tuple[Any, RowId]] = []

    @property
    def column(self) -> str:
        return self.columns[0]

    def on_insert(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        value = row[self.column]
        if value is None:
            return
        bisect.insort(self._entries, (value, rowid))

    def on_delete(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        value = row[self.column]
        if value is None:
            return
        idx = bisect.bisect_left(self._entries, (value, rowid))
        if idx < len(self._entries) and self._entries[idx] == (value, rowid):
            del self._entries[idx]

    def rebuild(self, table: Table) -> None:
        resolved = table.schema.resolve(self.columns[0])
        self.columns = (resolved,)
        self._entries = []
        for rowid in table.row_ids():
            value = table.get(rowid)[resolved]
            if value is not None:
                self._entries.append((value, rowid))
        self._entries.sort()

    def lookup(self, key: Any) -> Iterator[RowId]:
        if isinstance(key, tuple):
            key = key[0]
        lo = bisect.bisect_left(self._entries, (key, -1))
        for value, rowid in self._entries[lo:]:
            if value != key:
                break
            yield rowid

    def range_search(self, bounds: Sequence[tuple[Any, Any]]) -> Iterator[RowId]:
        """Yield row ids whose value lies within the (single) bound pair."""
        low, high = bounds[0]
        if low is None:
            start = 0
        else:
            start = bisect.bisect_left(self._entries, (low, -1))
        for value, rowid in self._entries[start:]:
            if high is not None and value > high:
                break
            yield rowid

    def min_value(self) -> Any:
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Any:
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)
