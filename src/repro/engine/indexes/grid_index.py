"""Uniform grid spatial index over d numeric columns.

Game objects live in a bounded world, move continuously, and are queried
with axis-aligned range predicates ("units within range r of me").  A
uniform grid with cell size close to the typical query radius answers such
queries by inspecting a handful of cells, and updates in O(1) when an
object moves between cells — matching the paper's observation that "most
NPCs will move continuously to a nearby location" (Section 4.1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.table import RowId, Table, TableIndex

__all__ = ["GridIndex"]


class GridIndex(TableIndex):
    """Buckets rows into axis-aligned grid cells of a fixed size."""

    def __init__(self, columns: Sequence[str], cell_size: float = 16.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.columns = tuple(columns)
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, ...], set[RowId]] = defaultdict(set)
        self._positions: dict[RowId, tuple[int, ...]] = {}

    def _cell_of(self, row: Mapping[str, Any]) -> tuple[int, ...] | None:
        coords = []
        for column in self.columns:
            value = row[column]
            if value is None:
                return None
            coords.append(int(float(value) // self.cell_size))
        return tuple(coords)

    def on_insert(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        cell = self._cell_of(row)
        if cell is None:
            return
        self._cells[cell].add(rowid)
        self._positions[rowid] = cell

    def on_delete(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        cell = self._positions.pop(rowid, None)
        if cell is None:
            return
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._cells[cell]

    def on_update(self, rowid: RowId, old: Mapping[str, Any], new: Mapping[str, Any]) -> None:
        old_cell = self._positions.get(rowid)
        new_cell = self._cell_of(new)
        if old_cell == new_cell:
            return
        self.on_delete(rowid, old)
        self.on_insert(rowid, new)

    def rebuild(self, table: Table) -> None:
        self.columns = tuple(table.schema.resolve(c) for c in self.columns)
        self._cells = defaultdict(set)
        self._positions = {}
        for rowid in table.row_ids():
            self.on_insert(rowid, table.get(rowid))

    def lookup(self, key: Any) -> Iterator[RowId]:
        """Equality lookup: return rows in the cell containing *key* whose
        coordinates match exactly."""
        if not isinstance(key, tuple):
            key = (key,)
        bounds = [(k, k) for k in key]
        yield from self.range_search(bounds)

    def range_search(self, bounds: Sequence[tuple[Any, Any]]) -> Iterator[RowId]:
        """Yield row ids inside the axis-aligned box given by *bounds*.

        Unbounded sides fall back to the observed cell extent in that
        dimension.  Candidate cells are enumerated and their contents
        returned; rows near cell borders are included because callers
        re-check the exact predicate (the engine always applies a residual
        filter above an index scan).
        """
        if not self._cells:
            return
        lows, highs = [], []
        for dim, (low, high) in enumerate(bounds):
            if low is None or high is None:
                # Only unbounded sides need the occupied extent; computing
                # it eagerly costs O(cells) per dimension per probe.
                dim_cells = [cell[dim] for cell in self._cells]
            low_cell = int(float(low) // self.cell_size) if low is not None else min(dim_cells)
            high_cell = int(float(high) // self.cell_size) if high is not None else max(dim_cells)
            lows.append(low_cell)
            highs.append(high_cell)
        box_cells = 1
        for lo, hi in zip(lows, highs):
            box_cells *= max(0, hi - lo + 1)
        if box_cells <= len(self._cells):
            # Enumerate the candidate cells of the query box directly.
            def cells_in_box(dim: int, prefix: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
                if dim == len(lows):
                    yield prefix
                    return
                for c in range(lows[dim], highs[dim] + 1):
                    yield from cells_in_box(dim + 1, prefix + (c,))

            for cell in cells_in_box(0, ()):
                yield from self._cells.get(cell, ())
        else:
            # Query box larger than the populated area: scan populated cells.
            for cell, rowids in self._cells.items():
                if all(lo <= c <= hi for c, lo, hi in zip(cell, lows, highs)):
                    yield from rowids

    def cell_count(self) -> int:
        return len(self._cells)

    def __len__(self) -> int:
        return len(self._positions)
