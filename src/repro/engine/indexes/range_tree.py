"""Multi-dimensional orthogonal range tree.

Section 4.2 of the paper: "SGL makes extensive use of large
multi-dimensional orthogonal range tree indices.  Each of these trees takes
Θ(n log^{d-1} n) space … a tree with 100,000 entries of 16 bytes each takes
about 2 GB."  This module implements the classic layered structure from
de Berg et al. (the paper's reference [3]):

* a balanced binary tree over the first coordinate,
* every internal node stores an *associated structure* — a (d−1)-dimensional
  range tree over the points in its subtree — with the last dimension stored
  as a sorted array,
* an orthogonal range query descends to the split node, then reports
  canonical subtrees via their associated structures, giving
  O(log^d n + k) query time.

Because game data changes at almost every tick, the index is rebuilt lazily:
mutations mark it dirty and the next query rebuilds from the owning table.
:meth:`RangeTreeIndex.node_count` and :meth:`RangeTreeIndex.estimated_bytes`
expose the storage blow-up measured in experiment E6.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.table import RowId, Table, TableIndex

__all__ = ["RangeTreeIndex", "RangeTreeNode"]


class _SortedLeafArray:
    """The 1-dimensional base case: a sorted array of (value, payload)."""

    __slots__ = ("entries",)

    def __init__(self, points: Sequence[tuple[tuple[float, ...], Any]], dim: int):
        self.entries = sorted(((p[0][dim], p[1]) for p in points), key=lambda e: e[0])

    def query(self, low: float | None, high: float | None) -> Iterator[Any]:
        values = [e[0] for e in self.entries]
        start = 0 if low is None else bisect.bisect_left(values, low)
        for value, payload in self.entries[start:]:
            if high is not None and value > high:
                break
            yield payload

    def node_count(self) -> int:
        return len(self.entries)


class RangeTreeNode:
    """A node of the primary tree over one coordinate."""

    __slots__ = ("value", "left", "right", "assoc", "point", "payload")

    def __init__(self, value: float):
        self.value = value
        self.left: "RangeTreeNode | None" = None
        self.right: "RangeTreeNode | None" = None
        #: Associated (d-1)-dimensional structure over this subtree's points.
        self.assoc: "_Tree | _SortedLeafArray | None" = None
        #: Set only at leaves: the full point and its payload.
        self.point: tuple[float, ...] | None = None
        self.payload: Any = None


class _Tree:
    """A d-dimensional layered range tree over a fixed point set."""

    def __init__(self, points: Sequence[tuple[tuple[float, ...], Any]], dim: int, dims: int):
        self.dim = dim
        self.dims = dims
        self.root = self._build(sorted(points, key=lambda p: p[0][dim]), dim, dims)

    def _build(
        self,
        points: Sequence[tuple[tuple[float, ...], Any]],
        dim: int,
        dims: int,
    ) -> RangeTreeNode | None:
        if not points:
            return None
        if len(points) == 1:
            point, payload = points[0]
            node = RangeTreeNode(point[dim])
            node.point = point
            node.payload = payload
            node.assoc = self._make_assoc(points, dim, dims)
            return node
        mid = (len(points) - 1) // 2
        node = RangeTreeNode(points[mid][0][dim])
        node.left = self._build(points[: mid + 1], dim, dims)
        node.right = self._build(points[mid + 1 :], dim, dims)
        node.assoc = self._make_assoc(points, dim, dims)
        return node

    @staticmethod
    def _make_assoc(
        points: Sequence[tuple[tuple[float, ...], Any]], dim: int, dims: int
    ) -> "_Tree | _SortedLeafArray":
        if dim + 1 == dims - 1:
            return _SortedLeafArray(points, dim + 1)
        if dim + 1 >= dims:
            return _SortedLeafArray(points, dim)
        return _Tree(points, dim + 1, dims)

    # -- queries ---------------------------------------------------------------------

    def query(self, bounds: Sequence[tuple[float | None, float | None]]) -> Iterator[Any]:
        low, high = bounds[self.dim]
        if self.root is None:
            return
        yield from self._query_node(self.root, low, high, bounds)

    def _query_assoc(self, node: RangeTreeNode, bounds) -> Iterator[Any]:
        assoc = node.assoc
        if isinstance(assoc, _SortedLeafArray):
            last_low, last_high = bounds[-1] if self.dim + 1 >= self.dims else bounds[self.dim + 1]
            yield from assoc.query(last_low, last_high)
        elif isinstance(assoc, _Tree):
            yield from assoc.query(bounds)

    def _leaf_matches(self, node: RangeTreeNode, bounds) -> bool:
        assert node.point is not None
        for value, (low, high) in zip(node.point, bounds):
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
        return True

    def _query_node(self, node: RangeTreeNode, low, high, bounds) -> Iterator[Any]:
        # Find the split node.
        split = node
        while split is not None and split.point is None:
            if high is not None and high < split.value:
                split = split.left
            elif low is not None and low > split.value:
                split = split.right
            else:
                break
        if split is None:
            return
        if split.point is not None:
            if self._leaf_matches(split, bounds):
                yield split.payload
            return
        # Walk the left spine reporting right subtrees.
        current = split.left
        while current is not None:
            if current.point is not None:
                if self._leaf_matches(current, bounds):
                    yield current.payload
                break
            if low is None or low <= current.value:
                if current.right is not None:
                    if current.right.point is not None:
                        if self._leaf_matches(current.right, bounds):
                            yield current.right.payload
                    else:
                        yield from self._query_assoc(current.right, bounds)
                current = current.left
            else:
                current = current.right
        # Walk the right spine reporting left subtrees.
        current = split.right
        while current is not None:
            if current.point is not None:
                if self._leaf_matches(current, bounds):
                    yield current.payload
                break
            if high is None or high > current.value:
                if current.left is not None:
                    if current.left.point is not None:
                        if self._leaf_matches(current.left, bounds):
                            yield current.left.payload
                    else:
                        yield from self._query_assoc(current.left, bounds)
                current = current.right
            else:
                current = current.left

    # -- accounting ------------------------------------------------------------------

    def node_count(self) -> int:
        return self._count(self.root)

    def _count(self, node: RangeTreeNode | None) -> int:
        if node is None:
            return 0
        total = 1
        if isinstance(node.assoc, _SortedLeafArray):
            total += node.assoc.node_count()
        elif isinstance(node.assoc, _Tree):
            total += node.assoc.node_count()
        total += self._count(node.left)
        total += self._count(node.right)
        return total


class RangeTreeIndex(TableIndex):
    """Orthogonal range tree over *d* numeric columns of a table.

    The structure is static; any table mutation marks it dirty and the next
    query triggers a full rebuild (O(n log^{d-1} n)).  This matches how the
    paper's engine uses the index — rebuilt/refreshed per tick over data
    that almost all changes anyway — and keeps deletions simple.
    """

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("range tree needs at least one column")
        self.columns = tuple(columns)
        self._table: Table | None = None
        self._tree: _Tree | None = None
        self._dirty = True
        self._size = 0

    # -- TableIndex protocol ----------------------------------------------------------

    def on_insert(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        self._dirty = True

    def on_delete(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        self._dirty = True

    def on_update(self, rowid: RowId, old: Mapping[str, Any], new: Mapping[str, Any]) -> None:
        self._dirty = True

    def rebuild(self, table: Table) -> None:
        self.columns = tuple(table.schema.resolve(c) for c in self.columns)
        self._table = table
        self._dirty = True

    # -- building -----------------------------------------------------------------------

    def _ensure_built(self) -> None:
        if not self._dirty or self._table is None:
            return
        points: list[tuple[tuple[float, ...], RowId]] = []
        for rowid in self._table.row_ids():
            row = self._table.get(rowid)
            coords = []
            ok = True
            for column in self.columns:
                value = row[column]
                if value is None:
                    ok = False
                    break
                coords.append(float(value))
            if ok:
                points.append((tuple(coords), rowid))
        self._size = len(points)
        if len(self.columns) == 1:
            self._tree = _Tree(points, 0, 1)
        else:
            self._tree = _Tree(points, 0, len(self.columns))
        self._dirty = False

    def build_from_points(self, points: Sequence[tuple[Sequence[float], Any]]) -> None:
        """Build directly from ``(coords, payload)`` pairs (no table needed).

        Used by experiment E6 and by the distributed index partitioner.
        """
        normalized = [(tuple(float(c) for c in coords), payload) for coords, payload in points]
        self._size = len(normalized)
        dims = len(self.columns)
        self._tree = _Tree(normalized, 0, dims if dims > 1 else 1)
        self._dirty = False
        self._table = None

    # -- queries --------------------------------------------------------------------------

    def lookup(self, key: Any) -> Iterator[RowId]:
        if not isinstance(key, tuple):
            key = (key,)
        bounds = [(k, k) for k in key]
        yield from self.range_search(bounds)

    def range_search(self, bounds: Sequence[tuple[Any, Any]]) -> Iterator[RowId]:
        self._ensure_built()
        if self._tree is None or self._size == 0:
            return
        normalized = []
        for low, high in bounds:
            normalized.append(
                (None if low is None else float(low), None if high is None else float(high))
            )
        # Pad missing trailing dimensions with unbounded ranges.
        while len(normalized) < len(self.columns):
            normalized.append((None, None))
        yield from self._tree.query(normalized)

    # -- accounting -------------------------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_built()
        return self._size

    def node_count(self) -> int:
        """Total number of primary + associated structure entries."""
        self._ensure_built()
        return 0 if self._tree is None else self._tree.node_count()

    def estimated_bytes(self, entry_size: int = 16) -> int:
        """Estimate memory use assuming *entry_size* bytes per stored entry.

        The paper's back-of-envelope (100,000 entries × 16 bytes ≈ 2 GB for
        a high-dimensional tree) corresponds to ``node_count() * entry_size``.
        """
        return self.node_count() * entry_size
