"""Hash index on one or more columns (equality lookups)."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Mapping, Sequence

from repro.engine.table import RowId, Table, TableIndex

__all__ = ["HashIndex"]


class HashIndex(TableIndex):
    """Maps a tuple of column values to the set of row ids holding it.

    Single-column indexes accept a bare value as the lookup key; composite
    indexes require a tuple in column order.
    """

    #: ``range_search`` below is a linear bucket scan, not sub-linear.
    range_capable = False

    def __init__(self, columns: Sequence[str]):
        self.columns = tuple(columns)
        self._buckets: dict[tuple[Any, ...], set[RowId]] = defaultdict(set)

    def _key(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(row[c] for c in self.columns)

    def on_insert(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        self._buckets[self._key(row)].add(rowid)

    def on_delete(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        key = self._key(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def rebuild(self, table: Table) -> None:
        self._buckets = defaultdict(set)
        resolved = tuple(table.schema.resolve(c) for c in self.columns)
        self.columns = resolved
        for rowid in table.row_ids():
            self.on_insert(rowid, table.get(rowid))

    def lookup(self, key: Any) -> Iterator[RowId]:
        """Yield row ids whose indexed columns equal *key*."""
        if not isinstance(key, tuple):
            key = (key,)
        yield from self._buckets.get(key, ())

    def range_search(self, bounds: Sequence[tuple[Any, Any]]) -> Iterator[RowId]:
        """Linear fallback: scan all buckets checking per-column bounds."""
        for key, rowids in self._buckets.items():
            ok = True
            for value, (low, high) in zip(key, bounds):
                if value is None:
                    ok = False
                    break
                if low is not None and value < low:
                    ok = False
                    break
                if high is not None and value > high:
                    ok = False
                    break
            if ok:
                yield from rowids

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def distinct_keys(self) -> int:
        return len(self._buckets)
