"""Memory-resident tables with index maintenance and tick snapshots.

Tables are the engine's storage layer.  Each table stores rows as plain
dicts keyed by an engine-assigned *row id*; secondary indexes register with
the table and are kept consistent on every insert, update and delete.

Three features exist specifically for the state-effect execution model of
the paper (Section 2):

* :meth:`Table.freeze` / :meth:`Table.thaw` — during the query and effect
  steps of a tick the state tables are read-only; the tick engine freezes
  them and any attempted mutation raises :class:`ExecutionError`.
* :meth:`Table.snapshot` / :meth:`Table.restore` — cheap copy-on-demand
  snapshots used by the debugger's resumable checkpoints (Section 3.3) and
  by the transaction engine when it needs to evaluate candidate subsets of
  atomic actions (Section 3.1).
* :meth:`Table.enable_change_log` / :meth:`Table.changes_since` — a bounded
  per-mutation change log that lets the incremental execution path
  (:mod:`repro.engine.operators.incremental`) maintain materialized query
  results from per-tick deltas instead of re-scanning the table.
"""

from __future__ import annotations

import itertools
import secrets
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.engine.errors import CatalogError, ExecutionError, SchemaError
from repro.engine.schema import Column, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.engine.batch import ColumnBatch

__all__ = ["Table", "TableIndex", "ChangeCursor", "RowId"]

RowId = int

#: Sentinel marking "row did not exist before this log entry" (an insert).
_NOT_PRESENT = object()

#: Change-log epoch tokens.  An epoch names one contiguous stretch of a
#: table's change-log history: it changes whenever the log is reset (bulk
#: rewrite) and is unique across processes, so a serialized cursor position
#: ``(epoch, version)`` from before a restart — or from a different table
#: instance replayed from a WAL — can never silently alias a position in
#: this instance's history just because the integer versions happen to
#: overlap.  A random 64-bit base plus a process-local counter keeps tokens
#: unique even when many tables reset within one process.
_EPOCH_BASE = secrets.randbits(64)
_EPOCH_COUNTER = itertools.count()


def _new_epoch() -> int:
    return _EPOCH_BASE ^ (next(_EPOCH_COUNTER) << 64)


class Table:
    """A named, schema-validated, memory-resident relation."""

    def __init__(self, name: str, schema: Schema, key: str | None = None):
        self.name = name
        self._schema = schema
        self.key = key
        if key is not None and key not in schema:
            raise SchemaError(f"key column {key!r} not in schema of table {name!r}")
        self._rows: dict[RowId, dict[str, Any]] = {}
        self._next_rowid: RowId = 0
        self._key_map: dict[Any, RowId] = {}
        self._indexes: dict[str, "TableIndex"] = {}
        self._frozen = False
        self._version = 0
        self._batch_cache: "tuple[int, ColumnBatch] | None" = None
        # Change log for incremental execution: entries are
        # ``(version, rowid, old)`` where ``old`` is the row *before* the
        # mutation (a copy) or ``_NOT_PRESENT`` for inserts.  ``None`` until
        # a consumer calls :meth:`enable_change_log`.
        self._change_log: "deque[tuple[int, RowId, Any]] | None" = None
        self._change_log_capacity = 0
        #: Oldest version a delta can be served from; ``changes_since`` with
        #: an older base version returns ``None`` (caller must rescan).
        self._log_floor = 0
        #: Identity of the current change-log history stretch (see
        #: :func:`_new_epoch`); consumers that persist positions must store
        #: ``(log_epoch, version)`` pairs, never bare versions.
        self._log_epoch = _new_epoch()

    # -- introspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self._rows)})"

    @property
    def version(self) -> int:
        """A counter bumped on every mutation; used for plan-cache invalidation."""
        return self._version

    @property
    def schema(self) -> Schema:
        return self._schema

    @schema.setter
    def schema(self, new_schema: Schema) -> None:
        """Replace the table's schema (a schema-altering operation).

        Subject to :meth:`freeze` like any other mutation.  Bumps the
        version and drops the columnar snapshot so :meth:`to_batch` can
        never serve a stale column list, and resets the change log (a delta
        computed across a schema change would mix row shapes).
        """
        if new_schema is self._schema:
            return
        self._check_writable()
        self._schema = new_schema
        self._version += 1
        self._batch_cache = None
        self._reset_change_log()

    @property
    def frozen(self) -> bool:
        return self._frozen

    def row_ids(self) -> Iterator[RowId]:
        return iter(self._rows.keys())

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over the *stored* row dicts — shared references.

        Callers must treat the yielded dicts as read-only: mutating one
        corrupts the table behind the indexes' back.  This is the fast path
        used by read-only consumers (the statistics collector,
        :meth:`to_batch`, and the scan operators, which copy each row
        themselves before handing it downstream — see
        :mod:`repro.engine.operators.scan` for the per-operator copy
        contract).  Use :meth:`scan` when the consumer needs rows it may
        mutate.
        """
        return iter(self._rows.values())

    def scan(self) -> Iterator[dict[str, Any]]:
        """Iterate over *copies* of the rows, safe for downstream mutation.

        Each yielded dict is freshly allocated and owned by the caller; the
        table cannot be corrupted through it.  Prefer :meth:`rows` when the
        consumer is read-only — copying here and again downstream is the
        exact per-row cost the columnar batch path exists to avoid.
        """
        for row in self._rows.values():
            yield dict(row)

    def to_batch(self) -> "ColumnBatch":
        """Return the table contents as a :class:`~repro.engine.batch.ColumnBatch`.

        The batch stores one Python list per column (values copied out of
        the row dicts, so downstream operators can never corrupt the table)
        and is cached per :attr:`version`: during the query and effect steps
        of a tick the state tables are frozen, so every query of the tick —
        and every operator within a query — shares one columnar snapshot
        instead of materializing a dict per row per operator.
        """
        from repro.engine.batch import ColumnBatch

        if self._batch_cache is not None and self._batch_cache[0] == self._version:
            return self._batch_cache[1]
        batch = ColumnBatch.from_rows(self.schema.names, self._rows.values())
        self._batch_cache = (self._version, batch)
        return batch

    def get(self, rowid: RowId) -> dict[str, Any]:
        """Return the row stored under *rowid* — a shared, read-only reference.

        Mutating the returned dict bypasses the version counter, so indexes,
        cached statistics and the columnar snapshot (:meth:`to_batch`) would
        all go stale; use :meth:`update` to change a row.
        """
        try:
            return self._rows[rowid]
        except KeyError:
            raise ExecutionError(f"table {self.name!r} has no row id {rowid}") from None

    def get_by_key(self, key_value: Any) -> dict[str, Any] | None:
        """Return the row whose key column equals *key_value*, if any.

        A shared, read-only reference, like :meth:`get` — mutate via
        :meth:`update` / :meth:`update_by_key` only.
        """
        if self.key is None:
            raise ExecutionError(f"table {self.name!r} has no key column")
        rowid = self._key_map.get(key_value)
        return None if rowid is None else self._rows[rowid]

    def rowid_for_key(self, key_value: Any) -> RowId | None:
        if self.key is None:
            raise ExecutionError(f"table {self.name!r} has no key column")
        return self._key_map.get(key_value)

    def column_values(self, name: str) -> list[Any]:
        """Return all values of one column (used by the statistics collector)."""
        resolved = self.schema.resolve(name)
        return [row[resolved] for row in self._rows.values()]

    # -- change log (incremental execution) ----------------------------------------

    def enable_change_log(self, capacity: int | None = None) -> None:
        """Start recording per-mutation deltas for :meth:`changes_since`.

        ``capacity`` bounds the log (oldest entries are dropped and the
        serviceable floor advances); the default is generous enough to cover
        one tick of full-table churn.  Enabling is idempotent; a repeated
        call may only grow the capacity, never shrink it.
        """
        wanted = capacity if capacity is not None else max(4096, 4 * len(self._rows))
        if self._change_log is None:
            self._change_log = deque()
            self._change_log_capacity = wanted
            self._log_floor = self._version
        elif wanted > self._change_log_capacity:
            self._change_log_capacity = wanted

    @property
    def change_log_enabled(self) -> bool:
        return self._change_log is not None

    def _log_change(self, rowid: RowId, old: Any) -> None:
        log = self._change_log
        if log is None:
            return
        log.append((self._version, rowid, old))
        if len(log) > self._change_log_capacity:
            dropped_version, _, _ = log.popleft()
            self._log_floor = dropped_version

    def _reset_change_log(self) -> None:
        """Discard the log after a bulk rewrite (clear/restore/schema change).

        The floor moves to the current version, so deltas based on any older
        version report "unavailable" and consumers fall back to a full scan.
        The epoch changes too: positions recorded before the reset name a
        different history and must never be served again, even by another
        table instance whose version counter happens to line up (the WAL
        replay-after-restart case).
        """
        self._log_epoch = _new_epoch()
        if self._change_log is not None:
            self._change_log.clear()
            self._log_floor = self._version

    @property
    def log_epoch(self) -> int:
        """Identity token of the current change-log history stretch.

        Serializable consumers (the WAL writer, restartable subscription
        nodes) must pair it with :attr:`version`; :meth:`changes_since` and
        :meth:`consolidate_changes` refuse positions from another epoch.
        """
        return self._log_epoch

    def _first_old_since(self, version: int) -> dict[RowId, Any] | None:
        """Per-rowid pre-image as of *version*, or ``None`` if unserviceable.

        The shared consolidation core of :meth:`changes_since` and
        :meth:`consolidate_changes`: the *first* log entry for a rowid in
        the suffix newer than *version* holds its state at *version*
        (:data:`_NOT_PRESENT` for rows that did not exist); the current
        state comes from the live row store.
        """
        if self._change_log is None or version < self._log_floor or version > self._version:
            return None
        suffix: list[tuple[int, RowId, Any]] = []
        for entry in reversed(self._change_log):
            if entry[0] <= version:
                break
            suffix.append(entry)
        suffix.reverse()
        first_old: dict[RowId, Any] = {}
        for _, rowid, old in suffix:
            if rowid not in first_old:
                first_old[rowid] = old
        return first_old

    def changes_since(
        self, version: int, epoch: int | None = None
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]] | None:
        """Net row changes between *version* and now, or ``None`` if unknown.

        Returns ``(added, removed)``: rows present now but not at *version*,
        and rows present at *version* but gone (or changed) now — an updated
        row appears in both lists (old values in ``removed``, new values in
        ``added``).  ``added`` entries are shared references to the stored
        rows and must be treated as read-only; ``removed`` entries are the
        retained pre-mutation copies.

        ``None`` means the log cannot answer (logging disabled, the log was
        truncated past *version*, a bulk rewrite happened, or *epoch* — when
        given — names a different log history); the caller must fall back to
        a full rescan.  In-process consumers holding a live reference may
        omit *epoch* (resets already advance the floor); consumers that
        serialize positions must pass the paired :attr:`log_epoch`.
        """
        if epoch is not None and epoch != self._log_epoch:
            return None
        if version == self._version:
            return [], []
        first_old = self._first_old_since(version)
        if first_old is None:
            return None
        added: list[dict[str, Any]] = []
        removed: list[dict[str, Any]] = []
        for rowid, old in first_old.items():
            current = self._rows.get(rowid)
            if old is not _NOT_PRESENT:
                if old == current:
                    # No-op update (same values written back): not a change.
                    continue
                removed.append(old)
            if current is not None:
                added.append(current)
        return added, removed

    def consolidate_changes(
        self, version: int, epoch: int | None = None
    ) -> list[tuple[RowId, dict[str, Any] | None, dict[str, Any] | None]] | None:
        """Netted per-row changes since *version*, keyed by rowid.

        The write-ahead-log form of :meth:`changes_since`: one
        ``(rowid, old, new)`` triple per changed row — ``old`` is ``None``
        for an insert, ``new`` is ``None`` for a delete, both are present
        for an update, and a no-op (same values written back, or an
        insert-then-delete) nets away entirely.  Both row dicts are fresh
        copies owned by the caller, ready to serialize.

        Returns ``None`` under exactly the :meth:`changes_since` conditions
        (log disabled/truncated/reset, or an *epoch* mismatch); the WAL
        writer then falls back to recording the full table.
        """
        if epoch is not None and epoch != self._log_epoch:
            return None
        if version == self._version:
            return []
        first_old = self._first_old_since(version)
        if first_old is None:
            return None
        out: list[tuple[RowId, dict[str, Any] | None, dict[str, Any] | None]] = []
        for rowid, old in first_old.items():
            current = self._rows.get(rowid)
            old_row = None if old is _NOT_PRESENT else old
            if old_row == current:
                continue
            out.append(
                (rowid, dict(old_row) if old_row else None, dict(current) if current else None)
            )
        return out

    def open_cursor(self, capacity: int | None = None) -> "ChangeCursor":
        """Register a change-log consumer positioned at the current version.

        Enables the change log if necessary (growing its capacity when
        *capacity* asks for more; see :meth:`enable_change_log`) and returns
        a :class:`ChangeCursor` whose :meth:`ChangeCursor.poll` serves the
        net deltas accumulated since its last poll.  Cursors are
        independent: each tracks its own base version over the one shared
        log, so any number of consumers (subscription groups, interest
        managers, tooling) can stream the same table.

        An already-enabled log keeps its configured capacity unless
        *capacity* explicitly asks for more — opening a cursor must not
        silently override an operator's bound.
        """
        if not self.change_log_enabled or capacity is not None:
            self.enable_change_log(capacity)
        return ChangeCursor(self)

    def changes_pending(self, version: int) -> int | None:
        """Number of logged mutations newer than *version*, or ``None``.

        A cheap probe of the log's serviceability (tests and tooling; the
        incremental view itself decides churn from the *netted*
        :meth:`changes_since` result, which this count upper-bounds).
        """
        if version == self._version:
            return 0
        if self._change_log is None or version < self._log_floor or version > self._version:
            return None
        count = 0
        for entry in reversed(self._change_log):
            if entry[0] <= version:
                break
            count += 1
        return count

    # -- mutation -----------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._frozen:
            raise ExecutionError(
                f"table {self.name!r} is frozen (state tables are read-only during "
                "the query and effect steps of a tick)"
            )

    def insert(self, values: Mapping[str, Any]) -> RowId:
        """Insert a row built from *values* (defaults filled in); return its id."""
        self._check_writable()
        row = self.schema.new_row(values)
        if self.key is not None:
            key_value = row[self.schema.resolve(self.key)]
            if key_value in self._key_map:
                raise ExecutionError(
                    f"duplicate key {key_value!r} in table {self.name!r}"
                )
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        if self.key is not None:
            self._key_map[row[self.schema.resolve(self.key)]] = rowid
        for index in self._indexes.values():
            index.on_insert(rowid, row)
        self._version += 1
        self._log_change(rowid, _NOT_PRESENT)
        return rowid

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> list[RowId]:
        """Insert many rows; returns their row ids in order."""
        return [self.insert(r) for r in rows]

    def update(self, rowid: RowId, changes: Mapping[str, Any]) -> None:
        """Apply *changes* (column → new value) to the row *rowid*."""
        self._check_writable()
        row = self.get(rowid)
        old = dict(row)
        resolved_changes = {}
        for name, value in changes.items():
            column = self.schema.column(name)
            resolved_changes[column.name] = value
        for name, value in resolved_changes.items():
            column = self.schema.column(name)
            from repro.engine.types import coerce_value

            row[name] = coerce_value(column.dtype, value)
        if self.key is not None:
            key_col = self.schema.resolve(self.key)
            if old[key_col] != row[key_col]:
                if row[key_col] in self._key_map:
                    row.update(old)
                    raise ExecutionError(
                        f"duplicate key {row[key_col]!r} in table {self.name!r}"
                    )
                del self._key_map[old[key_col]]
                self._key_map[row[key_col]] = rowid
        for index in self._indexes.values():
            index.on_update(rowid, old, row)
        self._version += 1
        self._log_change(rowid, old)

    def update_by_key(self, key_value: Any, changes: Mapping[str, Any]) -> None:
        rowid = self.rowid_for_key(key_value)
        if rowid is None:
            raise ExecutionError(f"no row with key {key_value!r} in table {self.name!r}")
        self.update(rowid, changes)

    def delete(self, rowid: RowId) -> None:
        """Remove the row *rowid*."""
        self._check_writable()
        row = self.get(rowid)
        del self._rows[rowid]
        if self.key is not None:
            key_col = self.schema.resolve(self.key)
            self._key_map.pop(row[key_col], None)
        for index in self._indexes.values():
            index.on_delete(rowid, row)
        self._version += 1
        self._log_change(rowid, row)

    def delete_where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> int:
        """Delete all rows matching *predicate*; return how many were removed.

        The predicate receives the stored row dicts (shared references, as
        with :meth:`rows`) and must not mutate them.
        """
        doomed = [rid for rid, row in self._rows.items() if predicate(row)]
        for rid in doomed:
            self.delete(rid)
        return len(doomed)

    def clear(self) -> None:
        """Remove every row (indexes are rebuilt empty)."""
        self._check_writable()
        self._rows.clear()
        self._key_map.clear()
        for index in self._indexes.values():
            index.rebuild(self)
        self._version += 1
        self._reset_change_log()

    @property
    def next_rowid(self) -> RowId:
        """The rowid the next insert will be assigned (WAL bookkeeping)."""
        return self._next_rowid

    def set_next_rowid(self, next_rowid: RowId) -> None:
        """Restore the rowid counter after a replay (never moves backwards,
        so replayed inserts can't collide with rows already present)."""
        self._next_rowid = max(self._next_rowid, next_rowid)

    def apply_row_changes(
        self, changes: Iterable[tuple[RowId, Mapping[str, Any] | None]]
    ) -> None:
        """Apply replayed ``(rowid, new row | None)`` changes verbatim.

        The low-level write path of WAL replay and log-based catch-up:
        rows land under their original rowids (``None`` deletes), indexes
        and the key map stay consistent, versions bump and the change log
        records every entry — live cursors on a recovering table keep
        streaming.  Values are trusted (they were validated when the log
        was written), so no schema coercion happens here.
        """
        self._check_writable()
        for rowid, new in changes:
            old = self._rows.get(rowid)
            if new is None:
                if old is None:
                    continue
                del self._rows[rowid]
                if self.key is not None:
                    self._key_map.pop(old[self.schema.resolve(self.key)], None)
                for index in self._indexes.values():
                    index.on_delete(rowid, old)
                self._version += 1
                self._log_change(rowid, old)
            else:
                row = dict(new)
                self._rows[rowid] = row
                if self.key is not None:
                    key_col = self.schema.resolve(self.key)
                    if old is not None:
                        self._key_map.pop(old[key_col], None)
                    self._key_map[row[key_col]] = rowid
                for index in self._indexes.values():
                    if old is not None:
                        index.on_update(rowid, old, row)
                    else:
                        index.on_insert(rowid, row)
                self._version += 1
                self._log_change(rowid, old if old is not None else _NOT_PRESENT)
            self._next_rowid = max(self._next_rowid, rowid + 1)

    # -- freeze / snapshot --------------------------------------------------------

    def freeze(self) -> None:
        """Mark the table read-only (query/effect steps of a tick)."""
        self._frozen = True

    def thaw(self) -> None:
        """Make the table writable again (update step of a tick)."""
        self._frozen = False

    def snapshot(self) -> dict[RowId, dict[str, Any]]:
        """Return a deep-enough copy of the row store for later :meth:`restore`."""
        return {rid: dict(row) for rid, row in self._rows.items()}

    def restore(self, snapshot: Mapping[RowId, Mapping[str, Any]]) -> None:
        """Replace the contents of the table with a previous :meth:`snapshot`."""
        was_frozen = self._frozen
        self._frozen = False
        self._rows = {rid: dict(row) for rid, row in snapshot.items()}
        self._next_rowid = max(self._rows.keys(), default=-1) + 1
        self._key_map = {}
        if self.key is not None:
            key_col = self.schema.resolve(self.key)
            for rid, row in self._rows.items():
                self._key_map[row[key_col]] = rid
        for index in self._indexes.values():
            index.rebuild(self)
        self._version += 1
        self._reset_change_log()
        self._frozen = was_frozen

    # -- index registration ---------------------------------------------------------

    def attach_index(self, name: str, index: "TableIndex") -> None:
        """Register *index* under *name* and populate it from current rows."""
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists on table {self.name!r}")
        index.rebuild(self)
        self._indexes[name] = index

    def detach_index(self, name: str) -> None:
        if name not in self._indexes:
            raise CatalogError(f"no index {name!r} on table {self.name!r}")
        del self._indexes[name]

    def index(self, name: str) -> "TableIndex":
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r} on table {self.name!r}") from None

    @property
    def indexes(self) -> dict[str, "TableIndex"]:
        return dict(self._indexes)

    def find_index_on(self, columns: Sequence[str]) -> "TableIndex | None":
        """Return an index whose key columns are exactly *columns*, if any."""
        wanted = tuple(self.schema.resolve(c) for c in columns)
        for index in self._indexes.values():
            if tuple(index.columns) == wanted:
                return index
        return None

    def find_index_covering(self, columns: Sequence[str]) -> tuple[str, "TableIndex"] | None:
        """The best range-capable index whose key columns are all among
        *columns*.

        The single coverage rule shared by the band-join planner, the
        incremental band probe and the index advisor: an index over a
        subset of the probe dimensions can still serve ``range_search``
        (uncovered dimensions are re-checked on the fetched rows), so
        among eligible indexes the one covering the most probe columns
        wins; indexes whose range search is a linear fallback
        (``range_capable = False``) never qualify.  Returns
        ``(index_name, index)`` or ``None`` — also ``None`` when a column
        does not exist in the schema.
        """
        try:
            wanted = {self.schema.resolve(c) for c in columns}
        except SchemaError:
            return None
        best: tuple[str, "TableIndex"] | None = None
        for name, index in self._indexes.items():
            if not index.range_capable:
                continue
            index_columns = tuple(index.columns)
            if not index_columns or not all(c in wanted for c in index_columns):
                continue
            if best is None or len(index_columns) > len(best[1].columns):
                best = (name, index)
        return best


class ChangeCursor:
    """A consumer's position in a table's change log.

    Created by :meth:`Table.open_cursor`.  Each :meth:`poll` returns the
    *net* row changes since the previous poll (or since creation) and
    advances the cursor to the table's current version.  ``None`` signals a
    **lost delta**: the log was truncated past the cursor (capacity
    eviction), reset by a bulk rewrite (``clear`` / ``restore`` / schema
    replacement), or disabled — the consumer must resynchronize from a full
    scan.  The cursor itself survives the gap: it re-anchors at the current
    version, so subsequent polls stream deltas again.
    """

    __slots__ = ("_table", "_version", "_epoch", "polls", "lost_deltas")

    def __init__(self, table: Table):
        self._table = table
        self._version = table.version
        self._epoch = table.log_epoch
        #: Total number of :meth:`poll` calls (tooling/tests).
        self.polls = 0
        #: How many polls could not be served from the log (forced resyncs).
        self.lost_deltas = 0

    @property
    def table(self) -> Table:
        return self._table

    @property
    def version(self) -> int:
        """The table version this cursor has consumed up to."""
        return self._version

    @property
    def position(self) -> tuple[int, int]:
        """The serializable position ``(log epoch, version)``.

        The epoch makes the position globally unambiguous: restored into a
        replayed table (a restart) or one that was bulk-rewritten, it can
        only ever produce a lost-delta resync, never a silently aliased
        delta from a different history whose versions happen to line up.
        """
        return (self._epoch, self._version)

    def seek(self, position: tuple[int, int]) -> None:
        """Restore a :attr:`position` captured earlier (possibly persisted)."""
        self._epoch, self._version = position

    @property
    def pending(self) -> int | None:
        """Logged mutations not yet polled, or ``None`` if unserviceable."""
        if self._epoch != self._table.log_epoch:
            return None
        return self._table.changes_pending(self._version)

    def poll(self) -> tuple[list[dict[str, Any]], list[dict[str, Any]]] | None:
        """Net ``(added, removed)`` since the last poll, else ``None``.

        ``added`` entries are shared references to the stored rows (treat
        as read-only; copy before retaining), ``removed`` entries are the
        retained pre-mutation copies — the same contract as
        :meth:`Table.changes_since`.  Always advances to the current
        position (epoch and version), even on a lost delta.
        """
        self.polls += 1
        delta = self._table.changes_since(self._version, self._epoch)
        self._version = self._table.version
        self._epoch = self._table.log_epoch
        if delta is None:
            self.lost_deltas += 1
        return delta


class TableIndex:
    """Interface implemented by all secondary indexes.

    Concrete index structures live in :mod:`repro.engine.indexes`; they keep
    a mapping from key values (one or more columns) to row ids and are
    notified by the owning :class:`Table` on every mutation.
    """

    #: The resolved column names this index is keyed on.
    columns: tuple[str, ...] = ()

    #: Whether ``range_search`` is genuinely sub-linear.  Structures whose
    #: range search is a linear fallback (the hash index) set this False so
    #: the band-join planner and advisor never pick them over the
    #: transient-grid path.
    range_capable: bool = True

    def on_insert(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def on_delete(self, rowid: RowId, row: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def on_update(self, rowid: RowId, old: Mapping[str, Any], new: Mapping[str, Any]) -> None:
        self.on_delete(rowid, old)
        self.on_insert(rowid, new)

    def rebuild(self, table: "Table") -> None:
        """Discard contents and re-add every row of *table*."""
        raise NotImplementedError
