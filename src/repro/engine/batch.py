"""Columnar batches for the vectorized execution path.

The row-at-a-time iterator model (:mod:`repro.engine.operators.base`)
materializes one dict per row per operator.  For the tick loop — where the
same queries run every tick over memory-resident tables (Section 4.1 of the
paper) — that dict churn dominates the per-tick cost.  A
:class:`ColumnBatch` instead stores a relation as parallel Python lists,
one per column, plus a *selection vector* of surviving physical indices:

* filters shrink the selection vector without touching the value lists,
* alias qualification renames columns while *sharing* the value lists,
* projections and joins gather values with list comprehensions instead of
  building a dict per intermediate row.

Row dicts are only materialized once, at the boundary back to the caller
(:meth:`ColumnBatch.to_rows`, used by
:class:`~repro.engine.operators.batch_ops.BatchBridgeOp`).

:class:`IndirectColumn` is the small trick that lets join operators reuse
the compiled expression machinery of
:func:`repro.engine.expressions.compile_batch` without materializing the
cross product: it presents ``values[indices[k]]`` under plain
``__getitem__``, so a predicate compiled against a pair of indirect columns
evaluates lazily over candidate join pairs.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["ColumnBatch", "DeltaBatch", "IndirectColumn"]


class IndirectColumn:
    """A virtual column ``values[indices[k]]`` supporting ``__getitem__``.

    Used by the batch join operators to evaluate compiled expressions over
    candidate (left, right) index pairs without first gathering the pair
    columns into new lists.
    """

    __slots__ = ("values", "indices")

    def __init__(self, values: Sequence[Any], indices: Sequence[int]):
        self.values = values
        self.indices = indices

    def __getitem__(self, k: int) -> Any:
        return self.values[self.indices[k]]

    def __len__(self) -> int:
        return len(self.indices)


class DeltaBatch:
    """A signed row-set delta: rows added to and removed from a relation.

    The incremental execution path (:mod:`repro.engine.operators.incremental`)
    represents the change of any relation between two table versions as two
    row multisets: ``added`` and ``removed``.  An *updated* row is simply
    its old version in ``removed`` plus its new version in ``added`` — the
    uniform representation that lets filters, projections and joins
    propagate deltas without caring which mutation produced them.

    Rows are stored as value *tuples* in ``names`` order (hashable, so they
    can key the materialized-view counters and hash-join tables), not as
    dicts; :meth:`row_dicts` converts when an expression needs a mapping.

    ``netted`` marks a delta whose two sides are known disjoint, letting
    :meth:`net` skip its counting pass when operators chain.
    """

    __slots__ = ("names", "added", "removed", "netted")

    def __init__(
        self,
        names: Sequence[str],
        added: list[tuple] | None = None,
        removed: list[tuple] | None = None,
        netted: bool = False,
    ):
        self.names = tuple(names)
        self.added = added if added is not None else []
        self.removed = removed if removed is not None else []
        self.netted = netted

    @classmethod
    def empty(cls, names: Sequence[str]) -> "DeltaBatch":
        return cls(names, netted=True)

    @classmethod
    def from_rows(
        cls,
        names: Sequence[str],
        added: Iterable[Mapping[str, Any]],
        removed: Iterable[Mapping[str, Any]],
    ) -> "DeltaBatch":
        """Build a delta from row mappings (values gathered in ``names`` order)."""
        names = tuple(names)
        return cls(
            names,
            [tuple(row[name] for name in names) for row in added],
            [tuple(row[name] for name in names) for row in removed],
        )

    def __len__(self) -> int:
        """Total number of signed rows (added plus removed)."""
        return len(self.added) + len(self.removed)

    def __repr__(self) -> str:
        return f"DeltaBatch(+{len(self.added)}, -{len(self.removed)})"

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def row_dicts(self, rows: Sequence[tuple]) -> list[dict[str, Any]]:
        """Materialize value tuples as row dicts (for expression evaluation)."""
        names = self.names
        return [dict(zip(names, values)) for values in rows]

    def net(self) -> "DeltaBatch":
        """Cancel rows appearing on both sides (e.g. a no-op update).

        Keeps deltas minimal as they propagate: an update that does not
        change any projected column nets out to nothing, so downstream
        operators and the view counters do no work for it.
        """
        if self.netted or not self.added or not self.removed:
            self.netted = True
            return self
        counts: Counter = Counter(self.added)
        counts.subtract(self.removed)
        added: list[tuple] = []
        removed: list[tuple] = []
        for values, count in counts.items():
            if count > 0:
                added.extend([values] * count)
            elif count < 0:
                removed.extend([values] * (-count))
        return DeltaBatch(self.names, added, removed, netted=True)


class ColumnBatch:
    """A relation stored as parallel per-column lists plus a selection vector.

    ``names`` fixes the column order (it matches the row-dict key order the
    equivalent row-at-a-time plan would produce), ``columns`` maps each name
    to a list of *all* physical values, and ``selection`` is either ``None``
    (every physical index is live) or a list of live indices in output
    order.

    Batches are immutable by convention: operators never mutate the value
    lists of an input batch, they build new batches (possibly sharing value
    lists, e.g. after a filter or a rename).
    """

    __slots__ = ("names", "columns", "selection", "_row_count")

    def __init__(
        self,
        names: Sequence[str],
        columns: Mapping[str, list],
        selection: list[int] | None = None,
    ):
        self.names = tuple(names)
        self.columns = dict(columns)
        self.selection = selection
        self._row_count = len(self.columns[self.names[0]]) if self.names else 0

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Iterable[Mapping[str, Any]]) -> "ColumnBatch":
        """Build a batch from row mappings (one pass, values copied into lists)."""
        names = tuple(names)
        columns: dict[str, list] = {name: [] for name in names}
        appenders = [columns[name].append for name in names]
        for row in rows:
            for name, append in zip(names, appenders):
                append(row.get(name))
        return cls(names, columns)

    @classmethod
    def from_columns(cls, names: Sequence[str], columns: Mapping[str, list]) -> "ColumnBatch":
        """Build a compacted batch (selection = all) from existing lists."""
        return cls(names, columns)

    # -- introspection ----------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *selected* (live) rows."""
        if self.selection is not None:
            return len(self.selection)
        return self._row_count

    def __repr__(self) -> str:
        return f"ColumnBatch({list(self.names)}, rows={len(self)})"

    def indices(self) -> Sequence[int]:
        """The live physical indices, in output order."""
        if self.selection is not None:
            return self.selection
        return range(self._row_count)

    def column(self, name: str) -> list:
        """The full (unselected) value list of one column."""
        return self.columns[name]

    # -- derivation -------------------------------------------------------------------

    def with_selection(self, selection: list[int]) -> "ColumnBatch":
        """A batch sharing this batch's value lists under a new selection."""
        return ColumnBatch(self.names, self.columns, selection)

    def qualify(self, alias: str) -> "ColumnBatch":
        """Rename every column to ``alias.unqualified`` — shares value lists.

        Mirrors ``_qualify_row`` in :mod:`repro.engine.operators.scan`, but
        costs O(columns) instead of O(rows × columns).
        """
        renamed = [f"{alias}.{name.split('.')[-1]}" for name in self.names]
        columns = {new: self.columns[old] for new, old in zip(renamed, self.names)}
        return ColumnBatch(renamed, columns, self.selection)

    def compact(self) -> "ColumnBatch":
        """Gather the selected values into fresh, dense lists (selection = all)."""
        if self.selection is None:
            return self
        sel = self.selection
        columns = {name: [col[i] for i in sel] for name, col in self.columns.items()}
        return ColumnBatch(self.names, columns)

    # -- boundary back to rows ----------------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize the selected rows as fresh dicts (caller owns them)."""
        names = self.names
        cols = [self.columns[name] for name in names]
        if self.selection is None:
            return [
                dict(zip(names, values))
                for values in zip(*cols)
            ] if names else []
        return [{name: col[i] for name, col in zip(names, cols)} for i in self.selection]
