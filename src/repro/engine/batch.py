"""Columnar batches for the vectorized execution path.

The row-at-a-time iterator model (:mod:`repro.engine.operators.base`)
materializes one dict per row per operator.  For the tick loop — where the
same queries run every tick over memory-resident tables (Section 4.1 of the
paper) — that dict churn dominates the per-tick cost.  A
:class:`ColumnBatch` instead stores a relation as parallel Python lists,
one per column, plus a *selection vector* of surviving physical indices:

* filters shrink the selection vector without touching the value lists,
* alias qualification renames columns while *sharing* the value lists,
* projections and joins gather values with list comprehensions instead of
  building a dict per intermediate row.

Row dicts are only materialized once, at the boundary back to the caller
(:meth:`ColumnBatch.to_rows`, used by
:class:`~repro.engine.operators.batch_ops.BatchBridgeOp`).

:class:`IndirectColumn` is the small trick that lets join operators reuse
the compiled expression machinery of
:func:`repro.engine.expressions.compile_batch` without materializing the
cross product: it presents ``values[indices[k]]`` under plain
``__getitem__``, so a predicate compiled against a pair of indirect columns
evaluates lazily over candidate join pairs.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["ColumnBatch", "IndirectColumn"]


class IndirectColumn:
    """A virtual column ``values[indices[k]]`` supporting ``__getitem__``.

    Used by the batch join operators to evaluate compiled expressions over
    candidate (left, right) index pairs without first gathering the pair
    columns into new lists.
    """

    __slots__ = ("values", "indices")

    def __init__(self, values: Sequence[Any], indices: Sequence[int]):
        self.values = values
        self.indices = indices

    def __getitem__(self, k: int) -> Any:
        return self.values[self.indices[k]]

    def __len__(self) -> int:
        return len(self.indices)


class ColumnBatch:
    """A relation stored as parallel per-column lists plus a selection vector.

    ``names`` fixes the column order (it matches the row-dict key order the
    equivalent row-at-a-time plan would produce), ``columns`` maps each name
    to a list of *all* physical values, and ``selection`` is either ``None``
    (every physical index is live) or a list of live indices in output
    order.

    Batches are immutable by convention: operators never mutate the value
    lists of an input batch, they build new batches (possibly sharing value
    lists, e.g. after a filter or a rename).
    """

    __slots__ = ("names", "columns", "selection", "_row_count")

    def __init__(
        self,
        names: Sequence[str],
        columns: Mapping[str, list],
        selection: list[int] | None = None,
    ):
        self.names = tuple(names)
        self.columns = dict(columns)
        self.selection = selection
        self._row_count = len(self.columns[self.names[0]]) if self.names else 0

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Iterable[Mapping[str, Any]]) -> "ColumnBatch":
        """Build a batch from row mappings (one pass, values copied into lists)."""
        names = tuple(names)
        columns: dict[str, list] = {name: [] for name in names}
        appenders = [columns[name].append for name in names]
        for row in rows:
            for name, append in zip(names, appenders):
                append(row.get(name))
        return cls(names, columns)

    @classmethod
    def from_columns(cls, names: Sequence[str], columns: Mapping[str, list]) -> "ColumnBatch":
        """Build a compacted batch (selection = all) from existing lists."""
        return cls(names, columns)

    # -- introspection ----------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *selected* (live) rows."""
        if self.selection is not None:
            return len(self.selection)
        return self._row_count

    def __repr__(self) -> str:
        return f"ColumnBatch({list(self.names)}, rows={len(self)})"

    def indices(self) -> Sequence[int]:
        """The live physical indices, in output order."""
        if self.selection is not None:
            return self.selection
        return range(self._row_count)

    def column(self, name: str) -> list:
        """The full (unselected) value list of one column."""
        return self.columns[name]

    # -- derivation -------------------------------------------------------------------

    def with_selection(self, selection: list[int]) -> "ColumnBatch":
        """A batch sharing this batch's value lists under a new selection."""
        return ColumnBatch(self.names, self.columns, selection)

    def qualify(self, alias: str) -> "ColumnBatch":
        """Rename every column to ``alias.unqualified`` — shares value lists.

        Mirrors ``_qualify_row`` in :mod:`repro.engine.operators.scan`, but
        costs O(columns) instead of O(rows × columns).
        """
        renamed = [f"{alias}.{name.split('.')[-1]}" for name in self.names]
        columns = {new: self.columns[old] for new, old in zip(renamed, self.names)}
        return ColumnBatch(renamed, columns, self.selection)

    def compact(self) -> "ColumnBatch":
        """Gather the selected values into fresh, dense lists (selection = all)."""
        if self.selection is None:
            return self
        sel = self.selection
        columns = {name: [col[i] for i in sel] for name, col in self.columns.items()}
        return ColumnBatch(self.names, columns)

    # -- boundary back to rows ----------------------------------------------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize the selected rows as fresh dicts (caller owns them)."""
        names = self.names
        cols = [self.columns[name] for name in names]
        if self.selection is None:
            return [
                dict(zip(names, values))
                for values in zip(*cols)
            ] if names else []
        return [{name: col[i] for name, col in zip(names, cols)} for i in self.selection]
