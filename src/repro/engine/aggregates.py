"""Aggregate / effect-combinator functions.

The same combinators serve two roles in the system, mirroring the paper:

* as SQL-style aggregate functions in :class:`~repro.engine.algebra.Aggregate`
  plan nodes, and
* as the ⊕ effect combinators of the state-effect pattern — "effects are
  combined using aggregate functions" (Section 2) — re-exported by
  :mod:`repro.runtime.effects`.

Each combinator is an incremental accumulator (so physical operators and the
parallel executor can merge partial aggregates) with an explicit identity
value.  ``choose`` implements the paper's deterministic conflict resolution
operator ⊕ used for exclusive effects (e.g. a seller picking one buyer): it
keeps the smallest value by sort order, which makes the outcome independent
of evaluation order, as the tick semantics require.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.errors import ExecutionError

__all__ = ["Accumulator", "AGGREGATE_NAMES", "make_accumulator", "combine_values"]


class Accumulator:
    """Incrementally combines values and can merge with another accumulator."""

    def __init__(self, func: str):
        self.func = func
        self._count = 0
        self._value: Any = None
        self._items: list[Any] | None = [] if func in ("collect", "union", "avg", "median") else None

    # -- feeding values -----------------------------------------------------------

    def add(self, value: Any) -> None:
        """Fold one value into the accumulator.  ``None`` values are skipped
        except for ``count`` where only non-null values are counted (SQL
        semantics)."""
        if value is None:
            return
        self._count += 1
        func = self.func
        if func == "sum":
            self._value = value if self._value is None else self._value + value
        elif func == "count":
            pass
        elif func == "min":
            self._value = value if self._value is None else min(self._value, value)
        elif func == "max":
            self._value = value if self._value is None else max(self._value, value)
        elif func == "avg":
            self._items.append(value)
        elif func == "median":
            self._items.append(value)
        elif func == "any":
            self._value = bool(value) if self._value is None else (self._value or bool(value))
        elif func == "all":
            self._value = bool(value) if self._value is None else (self._value and bool(value))
        elif func == "union":
            self._items.append(value)
        elif func == "collect":
            self._items.append(value)
        elif func == "choose":
            self._value = value if self._value is None else self._pick(self._value, value)
        elif func == "first":
            if self._value is None:
                self._value = value
        elif func == "last":
            self._value = value
        else:  # pragma: no cover - guarded by make_accumulator
            raise ExecutionError(f"unknown aggregate {func!r}")

    def merge(self, other: "Accumulator") -> None:
        """Merge a partial accumulator computed on another partition."""
        if other.func != self.func:
            raise ExecutionError("cannot merge accumulators of different functions")
        self._count += other._count
        if self._items is not None and other._items is not None:
            self._items.extend(other._items)
            return
        if other._value is None:
            return
        if self._value is None:
            self._value = other._value
            return
        func = self.func
        if func == "sum":
            self._value = self._value + other._value
        elif func == "min":
            self._value = min(self._value, other._value)
        elif func == "max":
            self._value = max(self._value, other._value)
        elif func == "any":
            self._value = self._value or other._value
        elif func == "all":
            self._value = self._value and other._value
        elif func == "choose":
            self._value = self._pick(self._value, other._value)
        elif func == "first":
            pass
        elif func == "last":
            self._value = other._value

    # -- results --------------------------------------------------------------------

    def result(self) -> Any:
        """Return the combined value (the identity if nothing was added)."""
        func = self.func
        if func == "count":
            return self._count
        if func == "sum":
            return 0 if self._value is None else self._value
        if func == "avg":
            if not self._items:
                return None
            return sum(self._items) / len(self._items)
        if func == "median":
            if not self._items:
                return None
            ordered = sorted(self._items)
            mid = len(ordered) // 2
            if len(ordered) % 2:
                return ordered[mid]
            return (ordered[mid - 1] + ordered[mid]) / 2
        if func == "any":
            return bool(self._value) if self._value is not None else False
        if func == "all":
            return bool(self._value) if self._value is not None else True
        if func == "union":
            out: set[Any] = set()
            for item in self._items:
                if isinstance(item, (set, frozenset, list, tuple)):
                    out |= set(item)
                else:
                    out.add(item)
            return frozenset(out)
        if func == "collect":
            return tuple(self._items)
        return self._value

    @property
    def count(self) -> int:
        """How many non-null values were folded in."""
        return self._count

    @staticmethod
    def _pick(a: Any, b: Any) -> Any:
        """Deterministic choice for ⊕: the smaller by sort order wins."""
        try:
            return a if a <= b else b
        except TypeError:
            return a if repr(a) <= repr(b) else b


#: All aggregate / combinator names accepted by the engine and by SGL class
#: declarations (``number damage : sum;``).
AGGREGATE_NAMES: tuple[str, ...] = (
    "sum",
    "count",
    "min",
    "max",
    "avg",
    "median",
    "any",
    "all",
    "union",
    "collect",
    "choose",
    "first",
    "last",
)


def make_accumulator(func: str) -> Accumulator:
    """Create an accumulator, validating the function name."""
    if func not in AGGREGATE_NAMES:
        raise ExecutionError(
            f"unknown aggregate/combinator {func!r}; known: {', '.join(AGGREGATE_NAMES)}"
        )
    return Accumulator(func)


def combine_values(func: str, values: Iterable[Any]) -> Any:
    """Combine an iterable of values in one shot (used by the interpreter)."""
    acc = make_accumulator(func)
    for value in values:
        acc.add(value)
    return acc.result()
