"""Table and column statistics for cost-based and adaptive optimization.

Section 4.1 of the paper observes that (1) the same query runs at every
tick, and (2) a large fraction of the data changes at every tick, so the
optimizer needs cheap statistics that capture the *current* workload state
("exploring" vs. "fighting") well enough to pick join orders.  We provide:

* per-column min/max/distinct counts and an equi-depth histogram,
* a reservoir sample of rows used to estimate multi-dimensional (spatial
  range) predicate selectivity, which plain per-column histograms cannot
  capture — the paper calls this out explicitly ("since many of our joins
  involve multi-dimensional range predicates, a histogram is not
  sufficient"),
* selectivity estimation for expression predicates, evaluated against the
  sample when possible and falling back to histogram/heuristic estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.expressions import BinaryOp, ColumnRef, Expression, Literal, UnaryOp

__all__ = [
    "ColumnStatistics",
    "TableStatistics",
    "collect_table_statistics",
    "estimate_selectivity",
    "suggest_grid_cell_size",
    "DEFAULT_GRID_CELL_SIZE",
]

#: Number of buckets in equi-depth histograms.
HISTOGRAM_BUCKETS = 16
#: Maximum number of rows kept in the per-table reservoir sample.
SAMPLE_SIZE = 256
#: Selectivity assumed for predicates we cannot analyse.
DEFAULT_SELECTIVITY = 0.33
#: Selectivity assumed for equality against an unknown value.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
#: Grid cell size used when neither probe widths nor column spans are known.
DEFAULT_GRID_CELL_SIZE = 16.0


@dataclass
class ColumnStatistics:
    """Summary statistics for a single (numeric or categorical) column."""

    name: str
    count: int = 0
    null_count: int = 0
    distinct_count: int = 0
    min_value: Any = None
    max_value: Any = None
    #: Bucket boundaries of an equi-depth histogram over numeric values.
    histogram: list[float] = field(default_factory=list)

    @property
    def density(self) -> float:
        """Fraction of rows expected to match an equality predicate."""
        if self.distinct_count <= 0:
            return DEFAULT_EQUALITY_SELECTIVITY
        return 1.0 / self.distinct_count

    def range_selectivity(self, low: float | None, high: float | None) -> float:
        """Estimate the fraction of rows with value in ``[low, high]``."""
        if self.count == 0:
            return 0.0
        if self.min_value is None or self.max_value is None:
            return DEFAULT_SELECTIVITY
        lo = self.min_value if low is None else low
        hi = self.max_value if high is None else high
        if hi < lo:
            return 0.0
        if self.histogram:
            return self._histogram_fraction(lo, hi)
        span = self.max_value - self.min_value
        if span <= 0:
            return 1.0 if lo <= self.min_value <= hi else 0.0
        overlap = max(0.0, min(hi, self.max_value) - max(lo, self.min_value))
        return min(1.0, overlap / span)

    def _histogram_fraction(self, lo: float, hi: float) -> float:
        boundaries = self.histogram
        buckets = len(boundaries) - 1
        if buckets <= 0:
            return DEFAULT_SELECTIVITY
        covered = 0.0
        for i in range(buckets):
            b_lo, b_hi = boundaries[i], boundaries[i + 1]
            if b_hi < lo or b_lo > hi:
                continue
            width = b_hi - b_lo
            if width <= 0:
                covered += 1.0
                continue
            overlap = min(hi, b_hi) - max(lo, b_lo)
            covered += max(0.0, overlap / width)
        return min(1.0, covered / buckets)


@dataclass
class TableStatistics:
    """Statistics for a whole table: row count, per-column stats, row sample."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    sample: list[dict[str, Any]] = field(default_factory=list)

    def column(self, name: str) -> ColumnStatistics | None:
        if name in self.columns:
            return self.columns[name]
        suffix = name.split(".")[-1]
        return self.columns.get(suffix)

    def predicate_selectivity(self, predicate: Expression) -> float:
        """Estimate the selectivity of *predicate* over this table."""
        return estimate_selectivity(predicate, self)


def collect_table_statistics(table: Any, sample_size: int = SAMPLE_SIZE, seed: int = 0) -> TableStatistics:
    """Scan *table* once and build :class:`TableStatistics`.

    The scan collects per-column summaries for numeric/boolean/string
    columns and reservoir-samples rows for multi-dimensional selectivity
    estimation.  Cost is O(rows × columns); the catalog caches results per
    table version.
    """
    rng = random.Random(seed)
    stats = TableStatistics(table_name=table.name, row_count=len(table))
    values_by_column: dict[str, list[Any]] = {c.name: [] for c in table.schema}
    sample: list[dict[str, Any]] = []
    for i, row in enumerate(table.rows()):
        for name in values_by_column:
            values_by_column[name].append(row[name])
        if len(sample) < sample_size:
            sample.append(dict(row))
        else:
            j = rng.randint(0, i)
            if j < sample_size:
                sample[j] = dict(row)
    stats.sample = sample
    for name, values in values_by_column.items():
        stats.columns[name] = _column_statistics(name, values)
    return stats


def _column_statistics(name: str, values: Sequence[Any]) -> ColumnStatistics:
    non_null = [v for v in values if v is not None]
    cs = ColumnStatistics(name=name, count=len(values), null_count=len(values) - len(non_null))
    hashable = []
    for v in non_null:
        try:
            hash(v)
            hashable.append(v)
        except TypeError:
            hashable.append(repr(v))
    cs.distinct_count = len(set(hashable))
    numeric = [v for v in non_null if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if numeric:
        numeric.sort()
        cs.min_value = numeric[0]
        cs.max_value = numeric[-1]
        cs.histogram = _equi_depth_boundaries(numeric, HISTOGRAM_BUCKETS)
    return cs


def _equi_depth_boundaries(sorted_values: Sequence[float], buckets: int) -> list[float]:
    """Return ``buckets + 1`` boundaries splitting the values into equal counts."""
    n = len(sorted_values)
    if n == 0:
        return []
    boundaries = [float(sorted_values[0])]
    for b in range(1, buckets):
        idx = min(n - 1, (b * n) // buckets)
        boundaries.append(float(sorted_values[idx]))
    boundaries.append(float(sorted_values[-1]))
    return boundaries


def suggest_grid_cell_size(
    stats: TableStatistics | None,
    columns: Sequence[str],
    observed_width: float | None = None,
) -> float:
    """Pick a cell size for a spatial grid index over *columns*.

    A grid answers a band probe by inspecting ~``ceil(width/cell + 1)^d``
    cells, so the sweet spot is a cell close to the typical probe width —
    when the index advisor has observed probe widths, the mean width wins
    outright.  Without observations, fall back to spreading ~``row_count``
    cells over the columns' observed spans (≈ one row per cell), which
    keeps both the cell count and the per-cell occupancy bounded for any
    data scale.
    """
    if observed_width is not None and observed_width > 0:
        return float(observed_width)
    spans: list[float] = []
    if stats is not None:
        for name in columns:
            cs = stats.column(name)
            if (
                cs is not None
                and isinstance(cs.min_value, (int, float))
                and isinstance(cs.max_value, (int, float))
                and cs.max_value > cs.min_value
            ):
                spans.append(float(cs.max_value) - float(cs.min_value))
    if not spans or stats is None or stats.row_count <= 1:
        return DEFAULT_GRID_CELL_SIZE
    cells_per_dim = max(1.0, float(stats.row_count) ** (1.0 / len(columns)))
    return max(min(spans) / cells_per_dim, 1e-6)


# -- selectivity estimation ------------------------------------------------------------


def estimate_selectivity(predicate: Expression, stats: TableStatistics | None) -> float:
    """Estimate the fraction of rows satisfying *predicate*.

    Strategy: if a row sample is available, evaluate the predicate on the
    sample (this handles correlated multi-dimensional range predicates);
    otherwise decompose simple comparisons against column statistics and
    use independence for conjunctions.
    """
    if stats is None:
        return DEFAULT_SELECTIVITY
    if stats.row_count == 0:
        return 0.0
    if stats.sample:
        matched = 0
        usable = 0
        for row in stats.sample:
            try:
                result = predicate.evaluate(row)
            except Exception:
                break
            usable += 1
            if result:
                matched += 1
        else:
            if usable:
                # Clamp away from 0 so cardinality products never hit zero.
                return max(matched / usable, 1.0 / (2 * stats.row_count + 1))
    return _analytic_selectivity(predicate, stats)


def _analytic_selectivity(predicate: Expression, stats: TableStatistics) -> float:
    if isinstance(predicate, Literal):
        return 1.0 if predicate.value else 0.0
    if isinstance(predicate, UnaryOp) and predicate.op == "!":
        return max(0.0, 1.0 - _analytic_selectivity(predicate.operand, stats))
    if isinstance(predicate, BinaryOp):
        if predicate.op == "&&":
            return _analytic_selectivity(predicate.left, stats) * _analytic_selectivity(
                predicate.right, stats
            )
        if predicate.op == "||":
            a = _analytic_selectivity(predicate.left, stats)
            b = _analytic_selectivity(predicate.right, stats)
            return min(1.0, a + b - a * b)
        return _comparison_selectivity(predicate, stats)
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(node: BinaryOp, stats: TableStatistics) -> float:
    column, literal, op = _normalize_comparison(node)
    if column is None:
        return DEFAULT_SELECTIVITY
    cs = stats.column(column)
    if cs is None:
        return DEFAULT_SELECTIVITY
    if op == "==":
        return cs.density
    if op == "!=":
        return max(0.0, 1.0 - cs.density)
    if not isinstance(literal, (int, float)) or isinstance(literal, bool):
        return DEFAULT_SELECTIVITY
    if op in ("<", "<="):
        return cs.range_selectivity(None, float(literal))
    if op in (">", ">="):
        return cs.range_selectivity(float(literal), None)
    return DEFAULT_SELECTIVITY


def _normalize_comparison(node: BinaryOp) -> tuple[str | None, Any, str]:
    """Return (column, literal, op) for ``col op lit`` or ``lit op col`` shapes."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
    if isinstance(node.left, ColumnRef) and isinstance(node.right, Literal):
        return node.left.name, node.right.value, node.op
    if isinstance(node.right, ColumnRef) and isinstance(node.left, Literal):
        return node.right.name, node.left.value, flipped.get(node.op, node.op)
    return None, None, node.op


def join_selectivity(
    left_stats: TableStatistics | None,
    right_stats: TableStatistics | None,
    left_column: str | None,
    right_column: str | None,
) -> float:
    """Estimate equi-join selectivity using the classic 1/max(ndv) formula."""
    ndvs = []
    if left_stats is not None and left_column is not None:
        cs = left_stats.column(left_column)
        if cs is not None and cs.distinct_count:
            ndvs.append(cs.distinct_count)
    if right_stats is not None and right_column is not None:
        cs = right_stats.column(right_column)
        if cs is not None and cs.distinct_count:
            ndvs.append(cs.distinct_count)
    if not ndvs:
        return DEFAULT_EQUALITY_SELECTIVITY
    return 1.0 / max(ndvs)
