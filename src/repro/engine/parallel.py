"""Parallel execution of effect-computation queries (Section 4.2).

The paper's argument is architectural: *"Since all tables are read-only
until the update phase, effect computation can occur without
synchronization."*  This module provides:

* :class:`PartitionedExecutor` — data-parallel execution: the outer table of
  a query is split into ``n_workers`` partitions, each worker evaluates the
  same plan restricted to its partition, and partial results are
  concatenated (no synchronization is needed precisely because the query
  and effect steps never write state tables).
* a *simulated-core* mode that measures per-partition work and reports the
  speedup an ideal n-core machine would achieve.  Pure-Python operators
  cannot show real wall-clock speedups under the GIL with threads, so
  benchmarks report both the measured wall clock (threads) and the
  simulated speedup; the DESIGN.md substitution table documents this.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.engine.algebra import LogicalPlan, Select, TableScan
from repro.engine.catalog import Catalog
from repro.engine.errors import ExecutionError
from repro.engine.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
)
from repro.engine.optimizer.planner import Planner

__all__ = [
    "PartitionedExecutor",
    "ParallelResult",
    "partition_plan",
    "partition_predicate",
]


def partition_predicate(column: str, n_partitions: int, partition: int) -> Expression:
    """The restriction ``bucket(column, n) == partition`` for one partition.

    ``bucket`` is a *total* hash routing function: NULL keys go to
    partition 0 and non-integer keys (floats, strings) hash.  The earlier
    ``key % n == partition`` form silently dropped such rows from every
    partition — ``None % n`` is ``None`` (falsy everywhere) and
    ``2.5 % 4`` equals no integer — so parallel results lost rows that
    serial execution kept.
    """
    return BinaryOp(
        "==",
        FunctionCall("bucket", [ColumnRef(column), Literal(n_partitions)]),
        Literal(partition),
    )


@dataclass
class ParallelResult:
    """Rows plus timing detail for a parallel execution."""

    rows: list[dict[str, Any]]
    wall_clock: float
    per_partition_seconds: list[float] = field(default_factory=list)

    @property
    def simulated_parallel_seconds(self) -> float:
        """Time an ideal machine would need: the slowest partition."""
        return max(self.per_partition_seconds) if self.per_partition_seconds else 0.0

    @property
    def simulated_serial_seconds(self) -> float:
        """Total work: the sum of partition times."""
        return sum(self.per_partition_seconds)

    @property
    def simulated_speedup(self) -> float:
        parallel = self.simulated_parallel_seconds
        if parallel <= 0:
            return 1.0
        return self.simulated_serial_seconds / parallel


def partition_plan(
    plan: LogicalPlan, outer_table: str, key_column: str, n_partitions: int
) -> list[LogicalPlan]:
    """Split *plan* into ``n_partitions`` copies, each restricted to a hash
    partition of *outer_table* on *key_column*.

    The restriction is expressed as an extra selection
    ``bucket(key, n) == i`` (see :func:`partition_predicate` — a total
    function, so NULL and non-integer keys land in exactly one partition)
    applied directly above every scan of the outer table, so each copy of
    the plan is an ordinary logical plan that any executor can run.
    """
    if n_partitions <= 0:
        raise ExecutionError("n_partitions must be positive")

    def restrict(node: LogicalPlan, partition: int) -> LogicalPlan:
        if isinstance(node, TableScan) and node.table_name == outer_table:
            qualified = (
                f"{node.alias}.{key_column}" if node.alias else key_column
            )
            return Select(node, partition_predicate(qualified, n_partitions, partition))
        children = node.children()
        if not children:
            return node
        return node.with_children([restrict(c, partition) for c in children])

    return [restrict(plan, i) for i in range(n_partitions)]


class PartitionedExecutor:
    """Runs a logical plan data-parallel over partitions of its outer table."""

    def __init__(self, catalog: Catalog, n_workers: int = 4, use_threads: bool = True):
        if n_workers <= 0:
            raise ExecutionError("n_workers must be positive")
        self.catalog = catalog
        self.n_workers = n_workers
        self.use_threads = use_threads
        self.planner = Planner(catalog)

    def execute(
        self,
        plan: LogicalPlan,
        outer_table: str,
        key_column: str,
        partition_only_scan_alias: str | None = None,
    ) -> ParallelResult:
        """Execute *plan* with its outer table partitioned across workers.

        ``partition_only_scan_alias`` limits the restriction to scans under
        a particular alias (needed for self-joins, where only the *acting*
        side must be partitioned — the probed side must stay complete on
        every worker, mirroring a broadcast join).
        """
        partitions = self._partition(plan, outer_table, key_column, partition_only_scan_alias)
        lowered = [self.planner.plan(p).physical for p in partitions]
        per_partition: list[float] = [0.0] * len(lowered)
        results: list[list[dict[str, Any]]] = [[] for _ in lowered]

        def run(i: int) -> None:
            start = time.perf_counter()
            results[i] = lowered[i].rows()
            per_partition[i] = time.perf_counter() - start

        start = time.perf_counter()
        if self.use_threads and len(lowered) > 1:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                list(pool.map(run, range(len(lowered))))
        else:
            for i in range(len(lowered)):
                run(i)
        wall_clock = time.perf_counter() - start
        rows: list[dict[str, Any]] = []
        for partial in results:
            rows.extend(partial)
        return ParallelResult(rows=rows, wall_clock=wall_clock, per_partition_seconds=per_partition)

    def _partition(
        self,
        plan: LogicalPlan,
        outer_table: str,
        key_column: str,
        alias: str | None,
    ) -> list[LogicalPlan]:
        n = self.n_workers

        def restrict(node: LogicalPlan, partition: int) -> LogicalPlan:
            if isinstance(node, TableScan) and node.table_name == outer_table:
                if alias is not None and node.alias != alias:
                    return node
                qualified = f"{node.alias}.{key_column}" if node.alias else key_column
                return Select(node, partition_predicate(qualified, n, partition))
            children = node.children()
            if not children:
                return node
            return node.with_children([restrict(c, partition) for c in children])

        return [restrict(plan, i) for i in range(n)]
