"""Scalar expression trees evaluated over rows.

The SGL compiler lowers script expressions into these nodes; relational
algebra operators (selection predicates, projection expressions, join
conditions, aggregate arguments) all carry :class:`Expression` trees.

Expressions are immutable.  Evaluation takes a *row* (a mapping from column
name to value) and an optional *context* of free variables (used by the SGL
runtime for script-local ``let`` bindings).  Each node also reports the
columns it references so the optimizer can push predicates and prune
projections, and supports structural substitution for algebraic rewrites.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.engine.errors import ExpressionError
from repro.engine.types import DataType, type_of_value

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Variable",
    "UnaryOp",
    "BinaryOp",
    "FunctionCall",
    "Conditional",
    "SetLiteral",
    "col",
    "lit",
    "var",
    "and_all",
    "BatchCompileError",
    "resolve_batch_column",
    "batch_supported",
    "compile_batch",
]


class Expression:
    """Abstract base class for scalar expressions."""

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        """Evaluate this expression against *row* and optional *context*."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Return the set of column names this expression references."""
        return set()

    def variables(self) -> set[str]:
        """Return the set of free (non-column) variable names referenced."""
        return set()

    def children(self) -> tuple["Expression", ...]:
        return ()

    def substitute(self, mapping: Mapping[str, "Expression"]) -> "Expression":
        """Return a copy with column references replaced per *mapping*."""
        return self

    def rename_columns(self, mapping: Mapping[str, str]) -> "Expression":
        """Return a copy with column names renamed per *mapping*."""
        return self.substitute({old: ColumnRef(new) for old, new in mapping.items()})

    def result_type(self) -> DataType:
        """A best-effort static type for this expression."""
        return DataType.ANY

    # -- convenience builders (used heavily in tests and the compiler) ------------

    def __add__(self, other: Any) -> "BinaryOp":
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other: Any) -> "BinaryOp":
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other: Any) -> "BinaryOp":
        return BinaryOp("*", self, _wrap(other))

    def __truediv__(self, other: Any) -> "BinaryOp":
        return BinaryOp("/", self, _wrap(other))

    def eq(self, other: Any) -> "BinaryOp":
        return BinaryOp("==", self, _wrap(other))

    def ne(self, other: Any) -> "BinaryOp":
        return BinaryOp("!=", self, _wrap(other))

    def lt(self, other: Any) -> "BinaryOp":
        return BinaryOp("<", self, _wrap(other))

    def le(self, other: Any) -> "BinaryOp":
        return BinaryOp("<=", self, _wrap(other))

    def gt(self, other: Any) -> "BinaryOp":
        return BinaryOp(">", self, _wrap(other))

    def ge(self, other: Any) -> "BinaryOp":
        return BinaryOp(">=", self, _wrap(other))

    def and_(self, other: Any) -> "BinaryOp":
        return BinaryOp("&&", self, _wrap(other))

    def or_(self, other: Any) -> "BinaryOp":
        return BinaryOp("||", self, _wrap(other))


def _wrap(value: Any) -> Expression:
    """Lift plain Python values into :class:`Literal` nodes."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        return self.value

    def result_type(self) -> DataType:
        return type_of_value(self.value)

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        try:
            return hash(("lit", self.value))
        except TypeError:
            return hash(("lit", repr(self.value)))


class ColumnRef(Expression):
    """A reference to a column of the current row."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        if self.name in row:
            return row[self.name]
        # Fall back to unqualified / qualified resolution against the row keys.
        suffix = "." + self.name.split(".")[-1]
        matches = [k for k in row if k == self.name or k.endswith(suffix) or k.split(".")[-1] == self.name]
        if len(matches) == 1:
            return row[matches[0]]
        if context is not None and self.name in context:
            return context[self.name]
        raise ExpressionError(f"unknown column {self.name!r} in row {list(row)[:8]}")

    def columns(self) -> set[str]:
        return {self.name}

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return mapping.get(self.name, self)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("col", self.name))


class Variable(Expression):
    """A free variable resolved from the evaluation context, not the row.

    The SGL runtime uses variables for script-local bindings (e.g. the loop
    variable of an accum-loop before it is fused into a join) and for the
    implicit ``self`` parameters of a script.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        if context is not None and self.name in context:
            return context[self.name]
        if self.name in row:
            return row[self.name]
        raise ExpressionError(f"unbound variable {self.name!r}")

    def variables(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"${self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("var", self.name))


def _null_safe(fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """Wrap a binary function so that a ``None`` operand yields ``None``."""

    def wrapper(a: Any, b: Any) -> Any:
        if a is None or b is None:
            return None
        return fn(a, b)

    return wrapper


def _safe_div(a: Any, b: Any) -> Any:
    if b == 0:
        return None
    return a / b


_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": _null_safe(operator.add),
    "-": _null_safe(operator.sub),
    "*": _null_safe(operator.mul),
    "/": _null_safe(_safe_div),
    "%": _null_safe(operator.mod),
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": _null_safe(operator.lt),
    "<=": _null_safe(operator.le),
    ">": _null_safe(operator.gt),
    ">=": _null_safe(operator.ge),
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
    "in": lambda a, b: a in b if b is not None else False,
    "min": _null_safe(min),
    "max": _null_safe(max),
}

#: Operators whose result is a boolean; used for static typing of predicates.
_BOOLEAN_OPS = {"==", "!=", "<", "<=", ">", ">=", "&&", "||", "in"}


class BinaryOp(Expression):
    """A binary operation (arithmetic, comparison or boolean connective)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _BINARY_OPS:
            raise ExpressionError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        # Short-circuit the boolean connectives so that predicates over
        # nullable columns behave like scripting languages expect.
        if self.op == "&&":
            return bool(self.left.evaluate(row, context)) and bool(self.right.evaluate(row, context))
        if self.op == "||":
            return bool(self.left.evaluate(row, context)) or bool(self.right.evaluate(row, context))
        lhs = self.left.evaluate(row, context)
        rhs = self.right.evaluate(row, context)
        try:
            return _BINARY_OPS[self.op](lhs, rhs)
        except TypeError as exc:
            raise ExpressionError(f"cannot apply {self.op!r} to {lhs!r} and {rhs!r}") from exc

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return BinaryOp(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def result_type(self) -> DataType:
        if self.op in _BOOLEAN_OPS:
            return DataType.BOOL
        return DataType.NUMBER

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinaryOp)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("bin", self.op, self.left, self.right))

    # -- conjunction utilities (used by the optimizer) -----------------------------

    def conjuncts(self) -> list[Expression]:
        """Split an AND-tree into its conjuncts; other nodes return themselves."""
        if self.op != "&&":
            return [self]
        out: list[Expression] = []
        for side in (self.left, self.right):
            if isinstance(side, BinaryOp):
                out.extend(side.conjuncts())
            else:
                out.append(side)
        return out


_UNARY_OPS: dict[str, Callable[[Any], Any]] = {
    "-": lambda a: None if a is None else -a,
    "!": lambda a: not bool(a),
    "abs": lambda a: None if a is None else abs(a),
}


class UnaryOp(Expression):
    """A unary operation: negation, boolean not, absolute value."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression):
        if op not in _UNARY_OPS:
            raise ExpressionError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        return _UNARY_OPS[self.op](self.operand.evaluate(row, context))

    def columns(self) -> set[str]:
        return self.operand.columns()

    def variables(self) -> set[str]:
        return self.operand.variables()

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return UnaryOp(self.op, self.operand.substitute(mapping))

    def result_type(self) -> DataType:
        return DataType.BOOL if self.op == "!" else DataType.NUMBER

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnaryOp) and other.op == self.op and other.operand == self.operand

    def __hash__(self) -> int:
        return hash(("un", self.op, self.operand))


def _distance(x1: Any, y1: Any, x2: Any, y2: Any) -> float:
    return math.hypot(x2 - x1, y2 - y1)


def _bucket(value: Any, n: Any) -> int:
    """Total hash routing: which of *n* buckets *value* belongs to.

    Total means *every* value maps to exactly one bucket — ``None`` goes to
    bucket 0 and unhashable values hash their repr — which is what the
    parallel executor's partition predicates require: a partial routing
    function silently drops rows from the union of the partitions.
    """
    if value is None:
        return 0
    try:
        return hash(value) % int(n)
    except TypeError:
        return hash(repr(value)) % int(n)


#: Functions evaluated even when an argument is ``None`` (everything else
#: null-propagates).  ``bucket`` must be total — see :func:`_bucket`.
_NULL_TOLERANT_FUNCTIONS = ("size", "contains", "bucket")

_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "min": min,
    "max": max,
    "abs": abs,
    "pow": pow,
    "distance": _distance,
    "size": lambda s: 0 if s is None else len(s),
    "contains": lambda s, v: v in s if s is not None else False,
    "clamp": lambda v, lo, hi: max(lo, min(hi, v)),
    "sign": lambda v: (v > 0) - (v < 0),
    "atan2": math.atan2,
    "cos": math.cos,
    "sin": math.sin,
    "bucket": _bucket,
}


class FunctionCall(Expression):
    """A call to one of the engine's built-in scalar functions."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]):
        if name not in _FUNCTIONS:
            raise ExpressionError(f"unknown function {name!r}")
        self.name = name
        self.args = tuple(args)

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        values = [a.evaluate(row, context) for a in self.args]
        if any(v is None for v in values) and self.name not in _NULL_TOLERANT_FUNCTIONS:
            return None
        try:
            return _FUNCTIONS[self.name](*values)
        except (TypeError, ValueError) as exc:
            raise ExpressionError(f"error calling {self.name}({values})") from exc

    def columns(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.columns()
        return out

    def variables(self) -> set[str]:
        out: set[str] = set()
        for a in self.args:
            out |= a.variables()
        return out

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return FunctionCall(self.name, [a.substitute(mapping) for a in self.args])

    def result_type(self) -> DataType:
        return DataType.BOOL if self.name == "contains" else DataType.NUMBER

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionCall) and other.name == self.name and other.args == self.args

    def __hash__(self) -> int:
        return hash(("fn", self.name, self.args))

    @staticmethod
    def known_functions() -> tuple[str, ...]:
        return tuple(sorted(_FUNCTIONS))


class Conditional(Expression):
    """An if/then/else expression (ternary)."""

    __slots__ = ("condition", "if_true", "if_false")

    def __init__(self, condition: Expression, if_true: Expression, if_false: Expression):
        self.condition = condition
        self.if_true = if_true
        self.if_false = if_false

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        if self.condition.evaluate(row, context):
            return self.if_true.evaluate(row, context)
        return self.if_false.evaluate(row, context)

    def columns(self) -> set[str]:
        return self.condition.columns() | self.if_true.columns() | self.if_false.columns()

    def variables(self) -> set[str]:
        return self.condition.variables() | self.if_true.variables() | self.if_false.variables()

    def children(self) -> tuple[Expression, ...]:
        return (self.condition, self.if_true, self.if_false)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Conditional(
            self.condition.substitute(mapping),
            self.if_true.substitute(mapping),
            self.if_false.substitute(mapping),
        )

    def __repr__(self) -> str:
        return f"if({self.condition!r}, {self.if_true!r}, {self.if_false!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Conditional)
            and other.condition == self.condition
            and other.if_true == self.if_true
            and other.if_false == self.if_false
        )

    def __hash__(self) -> int:
        return hash(("cond", self.condition, self.if_true, self.if_false))


class SetLiteral(Expression):
    """A set constructor over sub-expressions, e.g. ``{a, b, 3}``."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[Expression]):
        self.elements = tuple(elements)

    def evaluate(self, row: Mapping[str, Any], context: Mapping[str, Any] | None = None) -> Any:
        return frozenset(e.evaluate(row, context) for e in self.elements)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for e in self.elements:
            out |= e.columns()
        return out

    def children(self) -> tuple[Expression, ...]:
        return self.elements

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return SetLiteral([e.substitute(mapping) for e in self.elements])

    def result_type(self) -> DataType:
        return DataType.SET

    def __repr__(self) -> str:
        return "{" + ", ".join(map(repr, self.elements)) + "}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetLiteral) and other.elements == self.elements

    def __hash__(self) -> int:
        return hash(("set", self.elements))


# -- module-level helpers ------------------------------------------------------------


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def var(name: str) -> Variable:
    """Shorthand constructor for a free variable."""
    return Variable(name)


def and_all(predicates: Iterable[Expression]) -> Expression:
    """Combine predicates with AND; an empty iterable yields ``TRUE``."""
    preds = list(predicates)
    if not preds:
        return Literal(True)
    out = preds[0]
    for p in preds[1:]:
        out = BinaryOp("&&", out, p)
    return out


# -- compiled batch evaluation -------------------------------------------------------
#
# The vectorized execution path (see :mod:`repro.engine.batch`) evaluates
# expressions over *columns* (parallel value lists indexed by a physical row
# index) instead of row dicts.  ``compile_batch`` translates an expression
# tree, once per operator execution, into a tree of small Python closures
# ``f(i) -> value``: column references become direct list indexing, literals
# become constants, and interior nodes close over their children's compiled
# forms.  This removes both the per-row dict materialization and the
# per-row ``Expression.evaluate`` dispatch from the hot loop; a batch filter
# is then just ``[i for i in selection if predicate(i)]``.
#
# Name resolution happens at compile time against the batch's column names
# (mirroring :meth:`ColumnRef.evaluate`'s qualified/unqualified fallback),
# so the planner can prove at *plan* time — via :func:`batch_supported` —
# that compilation cannot fail at runtime, and fall back to the row path
# otherwise.


class BatchCompileError(ExpressionError):
    """An expression cannot be compiled for batch execution."""


def resolve_batch_column(name: str, names: Sequence[str]) -> str | None:
    """Resolve *name* against batch column *names*; ``None`` if it fails.

    Implements exactly the fallback of :meth:`ColumnRef.evaluate`: an exact
    match wins, otherwise a unique qualified/unqualified suffix match.
    """
    if name in names:
        return name
    suffix = "." + name.split(".")[-1]
    matches = [k for k in names if k.endswith(suffix) or k.split(".")[-1] == name]
    if len(matches) == 1:
        return matches[0]
    return None


def batch_supported(
    expr: Expression,
    names: Sequence[str],
    context: Mapping[str, Any] | None = None,
) -> bool:
    """Whether :func:`compile_batch` is guaranteed to succeed for *expr*
    over a batch with the given column *names* and optional *context*.

    The planner calls this before choosing the batch path so that every
    plan-time decision is safe: an unresolvable or ambiguous column simply
    keeps the query on the row-at-a-time path (which will raise the same
    error the user would have seen anyway, or resolve it via the context).
    """
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, ColumnRef):
        if resolve_batch_column(expr.name, names) is not None:
            return True
        return context is not None and expr.name in context
    if isinstance(expr, Variable):
        # Variable.evaluate checks the context, then the row by exact key.
        if context is not None and expr.name in context:
            return True
        return expr.name in names
    if isinstance(expr, (UnaryOp, BinaryOp, FunctionCall, Conditional, SetLiteral)):
        return all(batch_supported(child, names, context) for child in expr.children())
    return False


def compile_batch(
    expr: Expression,
    columns: Mapping[str, Sequence[Any]],
    context: Mapping[str, Any] | None = None,
) -> Callable[[int], Any]:
    """Compile *expr* into a per-index evaluator over *columns*.

    ``columns`` maps column name → an indexable of values (a plain list, or
    an :class:`~repro.engine.batch.IndirectColumn` inside joins).  The
    returned callable takes a physical row index and returns the
    expression's value, with semantics identical to
    :meth:`Expression.evaluate` on the corresponding row dict.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda i: value
    if isinstance(expr, ColumnRef):
        resolved = resolve_batch_column(expr.name, tuple(columns))
        if resolved is not None:
            return columns[resolved].__getitem__
        if context is not None and expr.name in context:
            value = context[expr.name]
            return lambda i: value
        raise BatchCompileError(f"unknown column {expr.name!r} in batch {list(columns)[:8]}")
    if isinstance(expr, Variable):
        if context is not None and expr.name in context:
            value = context[expr.name]
            return lambda i: value
        if expr.name in columns:
            return columns[expr.name].__getitem__
        raise BatchCompileError(f"unbound variable {expr.name!r}")
    if isinstance(expr, BinaryOp):
        left = compile_batch(expr.left, columns, context)
        right = compile_batch(expr.right, columns, context)
        op = expr.op
        if op == "&&":
            return lambda i: bool(left(i)) and bool(right(i))
        if op == "||":
            return lambda i: bool(left(i)) or bool(right(i))
        fn = _BINARY_OPS[op]

        def binary(i: int, fn=fn, left=left, right=right, op=op) -> Any:
            lhs = left(i)
            rhs = right(i)
            try:
                return fn(lhs, rhs)
            except TypeError as exc:
                raise ExpressionError(f"cannot apply {op!r} to {lhs!r} and {rhs!r}") from exc

        return binary
    if isinstance(expr, UnaryOp):
        operand = compile_batch(expr.operand, columns, context)
        fn = _UNARY_OPS[expr.op]
        return lambda i: fn(operand(i))
    if isinstance(expr, FunctionCall):
        compiled_args = [compile_batch(a, columns, context) for a in expr.args]
        fn = _FUNCTIONS[expr.name]
        null_passthrough = expr.name not in _NULL_TOLERANT_FUNCTIONS
        name = expr.name

        def call(i: int) -> Any:
            values = [g(i) for g in compiled_args]
            if null_passthrough and any(v is None for v in values):
                return None
            try:
                return fn(*values)
            except (TypeError, ValueError) as exc:
                raise ExpressionError(f"error calling {name}({values})") from exc

        return call
    if isinstance(expr, Conditional):
        condition = compile_batch(expr.condition, columns, context)
        if_true = compile_batch(expr.if_true, columns, context)
        if_false = compile_batch(expr.if_false, columns, context)
        return lambda i: if_true(i) if condition(i) else if_false(i)
    if isinstance(expr, SetLiteral):
        elements = [compile_batch(e, columns, context) for e in expr.elements]
        return lambda i: frozenset(e(i) for e in elements)
    raise BatchCompileError(f"cannot batch-compile {type(expr).__name__}")
