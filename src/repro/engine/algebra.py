"""Logical relational algebra.

The SGL compiler translates the query and effect steps of a script into a
tree of these nodes (Section 2 of the paper).  The optimizer rewrites the
tree (predicate pushdown, join reordering, index selection) and the planner
lowers it into physical operators from :mod:`repro.engine.operators`.

Nodes are immutable; rewrites build new trees.  Each node can infer its
output schema given a :class:`~repro.engine.catalog.Catalog`, which is what
lets the compiler stay entirely ignorant of the physical layout chosen by
the schema generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.engine.catalog import Catalog
from repro.engine.errors import PlanError
from repro.engine.expressions import BinaryOp, ColumnRef, Expression, Literal
from repro.engine.schema import Column, Schema
from repro.engine.types import DataType

__all__ = [
    "LogicalPlan",
    "TableScan",
    "Values",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "AggregateSpec",
    "Sort",
    "SortKey",
    "Limit",
    "Distinct",
    "Union",
    "RecursiveRef",
    "Fixpoint",
    "ShardedScan",
    "Exchange",
    "explain",
]


class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        """Return a copy of this node with *children* substituted."""
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    def output_schema(self, catalog: Catalog) -> Schema:
        raise NotImplementedError

    def node_label(self) -> str:
        """One-line description used by ``explain``."""
        return type(self).__name__

    # -- traversal helpers -----------------------------------------------------------

    def walk(self) -> Iterable["LogicalPlan"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def referenced_tables(self) -> set[str]:
        """Names of all base tables scanned anywhere in the tree."""
        return {
            node.table_name
            for node in self.walk()
            if isinstance(node, (TableScan, ShardedScan))
        }


class TableScan(LogicalPlan):
    """Scan a base table from the catalog, optionally under an alias.

    With an alias, output columns are qualified ``alias.column`` so that
    self-joins (ubiquitous in SGL: "for each unit, the other units in
    range") produce unambiguous schemas.
    """

    def __init__(self, table_name: str, alias: str | None = None):
        self.table_name = table_name
        self.alias = alias

    def output_schema(self, catalog: Catalog) -> Schema:
        schema = catalog.table(self.table_name).schema
        if self.alias:
            return schema.qualify(self.alias)
        return schema

    def node_label(self) -> str:
        if self.alias and self.alias != self.table_name:
            return f"TableScan({self.table_name} AS {self.alias})"
        return f"TableScan({self.table_name})"

    def __repr__(self) -> str:
        return self.node_label()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TableScan)
            and other.table_name == self.table_name
            and other.alias == self.alias
        )

    def __hash__(self) -> int:
        return hash(("scan", self.table_name, self.alias))


class Values(LogicalPlan):
    """An inline relation with a fixed list of rows (used in tests and by
    the transaction engine to evaluate candidate write sets)."""

    def __init__(self, schema: Schema, rows: Sequence[Mapping[str, Any]]):
        self.schema = schema
        self.rows = tuple(dict(r) for r in rows)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.schema

    def node_label(self) -> str:
        return f"Values({len(self.rows)} rows)"


class Select(LogicalPlan):
    """Filter rows by a boolean predicate expression."""

    def __init__(self, child: LogicalPlan, predicate: Expression):
        self.child = child
        self.predicate = predicate

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def node_label(self) -> str:
        return f"Select({self.predicate!r})"


class Project(LogicalPlan):
    """Compute output columns from expressions over the input row.

    ``projections`` maps output column name → expression.  Types are
    inferred from the expressions; pass ``types`` to override.
    """

    def __init__(
        self,
        child: LogicalPlan,
        projections: Mapping[str, Expression] | Sequence[tuple[str, Expression]],
        types: Mapping[str, DataType] | None = None,
    ):
        self.child = child
        if isinstance(projections, Mapping):
            items = list(projections.items())
        else:
            items = list(projections)
        self.projections: tuple[tuple[str, Expression], ...] = tuple(items)
        self.types = dict(types or {})

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return Project(child, self.projections, self.types)

    def output_schema(self, catalog: Catalog) -> Schema:
        cols = []
        for name, expr in self.projections:
            dtype = self.types.get(name, expr.result_type())
            cols.append(Column(name, dtype))
        return Schema(cols)

    def node_label(self) -> str:
        names = ", ".join(name for name, _ in self.projections)
        return f"Project({names})"

    @staticmethod
    def identity(child: LogicalPlan, names: Sequence[str]) -> "Project":
        """Project that simply keeps the named columns."""
        return Project(child, [(n, ColumnRef(n)) for n in names])


class Join(LogicalPlan):
    """Join two inputs on a boolean condition.

    ``how`` is ``"inner"``, ``"left"`` (left outer) or ``"cross"``.  The
    condition may be any expression over the concatenated schemas; the
    physical planner recognises equi-join and band-join (spatial range)
    shapes and picks hash or index joins accordingly.
    """

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        condition: Expression | None = None,
        how: str = "inner",
    ):
        if how not in ("inner", "left", "cross"):
            raise PlanError(f"unsupported join type {how!r}")
        self.left = left
        self.right = right
        self.condition = condition
        self.how = how

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return Join(left, right, self.condition, self.how)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.left.output_schema(catalog).concat(self.right.output_schema(catalog))

    def node_label(self) -> str:
        cond = "" if self.condition is None else f", on={self.condition!r}"
        return f"Join({self.how}{cond})"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: ``name = func(argument)``.

    ``func`` is any combinator known to :mod:`repro.runtime.effects`
    (``sum``, ``avg``, ``min``, ``max``, ``count``, ``any``, ``all``,
    ``union``, ``choose`` …).  ``argument`` may be ``None`` for ``count``.
    """

    name: str
    func: str
    argument: Expression | None = None

    def label(self) -> str:
        arg = "*" if self.argument is None else repr(self.argument)
        return f"{self.name}={self.func}({arg})"


class Aggregate(LogicalPlan):
    """Group rows by ``group_by`` columns and compute aggregates.

    This is the node the SGL compiler produces for effect combination and
    for accum-loops (Figure 2): grouping by the acting object's key and
    combining all assigned values with the declared combinator.
    """

    def __init__(
        self,
        child: LogicalPlan,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_by, self.aggregates)

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        cols = [child_schema.column(g) for g in self.group_by]
        for spec in self.aggregates:
            dtype = DataType.NUMBER
            if spec.func in ("any", "all"):
                dtype = DataType.BOOL
            elif spec.func in ("union", "collect"):
                dtype = DataType.SET
            elif spec.func == "choose":
                dtype = DataType.ANY
            cols.append(Column(spec.name, dtype))
        return Schema(cols)

    def node_label(self) -> str:
        aggs = ", ".join(spec.label() for spec in self.aggregates)
        return f"Aggregate(by=[{', '.join(self.group_by)}], {aggs})"


@dataclass(frozen=True)
class SortKey:
    """A sort key: an expression and a direction."""

    expression: Expression
    ascending: bool = True


class Sort(LogicalPlan):
    """Sort rows by one or more keys."""

    def __init__(self, child: LogicalPlan, keys: Sequence[SortKey]):
        self.child = child
        self.keys = tuple(keys)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def node_label(self) -> str:
        keys = ", ".join(
            f"{k.expression!r}{'' if k.ascending else ' DESC'}" for k in self.keys
        )
        return f"Sort({keys})"


class Limit(LogicalPlan):
    """Keep only the first *count* rows."""

    def __init__(self, child: LogicalPlan, count: int):
        if count < 0:
            raise PlanError("limit must be non-negative")
        self.child = child
        self.count = count

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def node_label(self) -> str:
        return f"Limit({self.count})"


class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    def __init__(self, child: LogicalPlan):
        self.child = child

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return Distinct(child)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)


class Union(LogicalPlan):
    """Bag union of two inputs with identical column names."""

    def __init__(self, left: LogicalPlan, right: LogicalPlan):
        self.left = left
        self.right = right

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Union":
        left, right = children
        return Union(left, right)

    def output_schema(self, catalog: Catalog) -> Schema:
        left_schema = self.left.output_schema(catalog)
        right_schema = self.right.output_schema(catalog)
        if left_schema.names != right_schema.names:
            raise PlanError(
                f"union inputs differ: {left_schema.names} vs {right_schema.names}"
            )
        return left_schema


class RecursiveRef(LogicalPlan):
    """A reference to the accumulating relation of an enclosing :class:`Fixpoint`.

    The node is a leaf with an *explicit* schema (recursion has no base
    table the catalog could answer for), so rewrite rules and schema
    inference work inside the step plan without special cases.  Under
    semi-naive evaluation the reference is bound to the previous round's
    delta; under naive evaluation to the full accumulated relation.

    ``name`` distinguishes binding slots when the physical planner installs
    several (the accumulator plus per-table delta variants for incremental
    re-closure); plans written by hand or by the SGL compiler use the
    default accumulator slot.
    """

    ACCUMULATOR = "__rec__"

    def __init__(self, schema: Schema, name: str = ACCUMULATOR):
        self.schema = schema
        self.name = name

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.schema

    def node_label(self) -> str:
        return f"RecursiveRef({self.name}: {', '.join(self.schema.names)})"


class Fixpoint(LogicalPlan):
    """Least-fixpoint iteration: the closure of ``base`` under ``step``.

    ``step`` must reference the accumulating relation through at least one
    :class:`RecursiveRef` whose column names match ``base``'s output.  The
    result is the set (duplicates removed) of all rows derivable from the
    base rows by repeatedly applying the step, capped at ``max_rounds``
    rounds (``None`` = iterate to convergence).

    ``distinct_on`` optionally restricts the dedup key to a subset of
    columns; the *first* derivation of a key wins, so a column carrying the
    round number becomes a BFS depth / influence radius — exactly what
    influence maps need.
    """

    def __init__(
        self,
        base: LogicalPlan,
        step: LogicalPlan,
        max_rounds: int | None = None,
        distinct_on: Sequence[str] = (),
    ):
        if max_rounds is not None and max_rounds < 0:
            raise PlanError("fixpoint iteration cap must be non-negative")
        refs = [node for node in step.walk() if isinstance(node, RecursiveRef)]
        if not any(ref.name == RecursiveRef.ACCUMULATOR for ref in refs):
            raise PlanError(
                "fixpoint step must reference the accumulating relation "
                "through a RecursiveRef"
            )
        self.base = base
        self.step = step
        self.max_rounds = max_rounds
        self.distinct_on = tuple(distinct_on)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.base, self.step)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Fixpoint":
        base, step = children
        return Fixpoint(base, step, self.max_rounds, self.distinct_on)

    def output_schema(self, catalog: Catalog) -> Schema:
        base_schema = self.base.output_schema(catalog)
        step_schema = self.step.output_schema(catalog)
        if base_schema.names != step_schema.names:
            raise PlanError(
                f"fixpoint base and step schemas differ: "
                f"{base_schema.names} vs {step_schema.names}"
            )
        for name in self.distinct_on:
            if name not in base_schema.names:
                raise PlanError(f"fixpoint distinct_on column {name!r} not in output")
        return base_schema

    def node_label(self) -> str:
        cap = "∞" if self.max_rounds is None else str(self.max_rounds)
        keys = f", distinct_on=[{', '.join(self.distinct_on)}]" if self.distinct_on else ""
        return f"Fixpoint(max_rounds={cap}{keys})"


class ShardedScan(LogicalPlan):
    """Scan one shard's slice of a spatially partitioned table.

    A shard owns the half-open range ``low <= axis_column < high`` of the
    partition axis; ``None`` on either side marks an unbounded edge shard.
    The node is sugar: :meth:`to_select` expands it into an ordinary
    ``Select`` over a ``TableScan`` so that every downstream machine —
    index matching, batch lowering, kernel compilation — applies to the
    shard slice unchanged.  The optimizer performs this expansion up
    front; the planner also accepts an unexpanded node.
    """

    def __init__(
        self,
        table_name: str,
        axis_column: str,
        low: float | None,
        high: float | None,
        alias: str | None = None,
    ):
        self.table_name = table_name
        self.axis_column = axis_column
        self.low = low
        self.high = high
        self.alias = alias

    def output_schema(self, catalog: Catalog) -> Schema:
        schema = catalog.table(self.table_name).schema
        if self.alias:
            return schema.qualify(self.alias)
        return schema

    def to_select(self) -> LogicalPlan:
        """Expand into ``Select(TableScan, range predicate)``."""
        scan = TableScan(self.table_name, self.alias)
        axis = f"{self.alias}.{self.axis_column}" if self.alias else self.axis_column
        parts: list[Expression] = []
        if self.low is not None:
            parts.append(BinaryOp(">=", ColumnRef(axis), Literal(self.low)))
        if self.high is not None:
            parts.append(BinaryOp("<", ColumnRef(axis), Literal(self.high)))
        if not parts:
            return scan
        predicate = parts[0]
        for part in parts[1:]:
            predicate = BinaryOp("&&", predicate, part)
        return Select(scan, predicate)

    def node_label(self) -> str:
        low = "-inf" if self.low is None else f"{self.low:g}"
        high = "+inf" if self.high is None else f"{self.high:g}"
        target = self.table_name if not self.alias else f"{self.table_name} AS {self.alias}"
        return f"ShardedScan({target}, {self.axis_column} in [{low}, {high}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardedScan)
            and other.table_name == self.table_name
            and other.axis_column == self.axis_column
            and other.low == self.low
            and other.high == self.high
            and other.alias == self.alias
        )

    def __hash__(self) -> int:
        return hash(
            ("sharded_scan", self.table_name, self.axis_column, self.low, self.high, self.alias)
        )


class Exchange(LogicalPlan):
    """Route rows to destination shards by their position on the partition axis.

    ``cuts`` holds the interior shard boundaries in ascending order (so
    ``len(cuts) + 1`` shards); a row's destination is the index of the
    first cut greater than its axis value.  The output schema gains a
    ``shard_column`` carrying the destination shard id.

    ``exclude_shard`` drops rows destined for that shard, which turns the
    operator into a handoff detector: an exchange over shard *i*'s primary
    table with ``exclude_shard=i`` emits exactly the rows whose updated
    position has left the shard's range, already labelled with their new
    owner.
    """

    SHARD_COLUMN = "__shard__"

    def __init__(
        self,
        child: LogicalPlan,
        axis_column: str,
        cuts: Sequence[float],
        shard_column: str = SHARD_COLUMN,
        exclude_shard: int | None = None,
    ):
        if list(cuts) != sorted(cuts):
            raise PlanError("exchange cuts must be ascending")
        self.child = child
        self.axis_column = axis_column
        self.cuts = tuple(cuts)
        self.shard_column = shard_column
        self.exclude_shard = exclude_shard

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Exchange":
        (child,) = children
        return Exchange(child, self.axis_column, self.cuts, self.shard_column, self.exclude_shard)

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        if self.shard_column in child_schema.names:
            raise PlanError(f"exchange shard column {self.shard_column!r} collides with input")
        return Schema(list(child_schema) + [Column(self.shard_column, DataType.NUMBER)])

    def node_label(self) -> str:
        skip = "" if self.exclude_shard is None else f", exclude={self.exclude_shard}"
        return f"Exchange({self.axis_column}, {len(self.cuts) + 1} shards{skip})"


def explain(plan: LogicalPlan, indent: int = 0) -> str:
    """Render a logical plan as an indented tree (used by the debugger)."""
    lines = [("  " * indent) + plan.node_label()]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
