# Development entry points.  `make check` is what CI runs.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test smoke bench bench-columnar

## Run the tier-1 test suite plus a quickstart smoke run (CI gate).
check: test smoke

## Tier-1 tests (unit + equivalence + workloads).
test:
	$(PYTHON) -m pytest -x -q

## Smoke: the quickstart example must run end to end.
smoke:
	$(PYTHON) examples/quickstart.py

## Full benchmark suite (pytest-benchmark; takes a few minutes).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Just the columnar-vs-row benchmarks, with timings printed.
bench-columnar:
	$(PYTHON) -m pytest benchmarks/bench_columnar.py -q -s
