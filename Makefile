# Development entry points.  Each target mirrors a CI job exactly:
# `make check` = the test job, `make lint` = the lint job,
# `make examples` = the examples smoke job (every script in examples/),
# `make bench-incremental` = the incremental speedup gate,
# `make bench-index` = the index-join speedup gate,
# `make bench-shared` = the shared-plan (MQO) speedup gate,
# `make bench-subscriptions` = the subscription fan-out speedup gate,
# `make bench-wal` = the WAL persist-overhead + replay speedup gates,
# `make bench-compiled` = the kernel-compilation speedup gates,
# `make bench-fixpoint` = the semi-naive fixpoint + warm re-closure gates,
# `make bench-distributed` = the sharded multi-process speedup gate,
# `make cov` = the coverage job (pytest --cov, fails under the floor),
# `make bench-ci` = the benchmark/regression job (writes BENCH_tick.json),
# `make loadtest` = the capacity ramp (find the tick-deadline breaking point).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test smoke examples lint cov bench bench-columnar bench-incremental bench-index bench-shared bench-subscriptions bench-wal bench-compiled bench-fixpoint bench-distributed bench-ci loadtest

## Run the tier-1 test suite plus a quickstart smoke run (CI gate).
check: test smoke

## Tier-1 tests (unit + equivalence + workloads).
test:
	$(PYTHON) -m pytest -x -q

## Smoke: the quickstart example must run end to end.
smoke:
	$(PYTHON) examples/quickstart.py

## Smoke every example script end to end (the CI examples job).
examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null; \
	done; echo "all examples ran cleanly"

## Lint (same command as the CI lint job; `pip install ruff` if missing).
lint:
	ruff check .

## Full benchmark suite (pytest-benchmark; takes a few minutes).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Just the columnar-vs-row benchmarks, with timings printed.
bench-columnar:
	$(PYTHON) -m pytest benchmarks/bench_columnar.py -q -s

## Incremental-vs-batch/row benchmarks incl. the >=3x low-churn gate.
bench-incremental:
	$(PYTHON) -m pytest benchmarks/bench_incremental.py -q -s

## Index-join-vs-grid-rebuild benchmarks incl. the >=3x gate.
bench-index:
	$(PYTHON) -m pytest benchmarks/bench_index_join.py -q -s

## Shared-plan-pipeline-vs-per-query benchmarks incl. the >=2x gate.
bench-shared:
	$(PYTHON) -m pytest benchmarks/bench_shared_plans.py -q -s

## Subscription delta-fan-out-vs-re-query benchmarks incl. the >=5x gate.
bench-subscriptions:
	$(PYTHON) -m pytest benchmarks/bench_subscriptions.py -q -s

## WAL durability gates: persist phase <10% of the tick, replay >=2x live.
bench-wal:
	$(PYTHON) -m pytest benchmarks/bench_wal.py -q -s

## Compiled-kernel-vs-interpreted-batch benchmarks incl. the >=2x gates.
bench-compiled:
	$(PYTHON) -m pytest benchmarks/bench_compiled.py -q -s

## Fixpoint gates: semi-naive >=3x naive, warm re-closure >=2x from-scratch.
bench-fixpoint:
	$(PYTHON) -m pytest benchmarks/bench_fixpoint.py -q -s

## Sharded multi-process gate: >=2x critical-path speedup at 4 shards.
bench-distributed:
	$(PYTHON) -m pytest benchmarks/bench_distributed.py -q -s

## Tier-1 tests under coverage (`pip install pytest-cov` if missing).
cov:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing --cov-fail-under=82

## CI benchmark pipeline: write BENCH_tick.json, gate vs the baseline.
bench-ci:
	$(PYTHON) benchmarks/ci_bench.py --output BENCH_tick.json --baseline benchmarks/BENCH_baseline.json

## Capacity ramp: grow units/subscribers until the tick deadline breaches,
## report the breaking point with per-phase p50/p95/p99 latencies.
loadtest:
	$(PYTHON) benchmarks/loadtest.py --output BENCH_tick.json
