"""Setup shim so the package installs offline with `pip install -e .`.

The environment has no network access and no `wheel` package, so PEP 517
editable builds cannot produce a wheel; the classic ``setup.py develop``
path used by pip's legacy editable install works with plain setuptools.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
