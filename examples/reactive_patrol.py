"""Multi-tick and reactive scripting example (Section 3.2).

Guards patrol using a multi-tick script (`waitNextTick` between waypoints).
A reactive handler watches for damage; when a guard is hurt it interrupts
the patrol (resets the implicit program counter) and queues a retreat
effect for the next tick — the paper's interruptible-intention model.

Run with:  python examples/reactive_patrol.py
"""

from repro import ExecutionMode, GameWorld
from repro.runtime import Handler
from repro.sgl.ir import EffectAssignment

SOURCE = """
class Guard {
  state:
    number x = 0;
    number hp = 10;
  effects:
    number vx : sum;
    number dmg : sum;
}

// A three-step patrol: advance, advance, hold position.
script patrol(Guard self) {
  vx <- 2;
  waitNextTick;
  vx <- 2;
  waitNextTick;
  vx <- 0;
}
"""


def main() -> None:
    world = GameWorld(SOURCE, mode=ExecutionMode.COMPILED)
    world.add_update_rule("Guard", "x", lambda s, e: s["x"] + e.get("vx", 0))
    world.add_update_rule("Guard", "hp", lambda s, e: s["hp"] - e.get("dmg", 0))
    world.add_handler(
        Handler(
            name="retreat-when-hurt",
            class_name="Guard",
            condition=lambda row: row["hp"] < 10,
            action=lambda row: [EffectAssignment("Guard", row["id"], "vx", -4)],
            interrupts=("patrol",),
        )
    )
    guard = world.spawn("Guard")

    for tick in range(6):
        if tick == 3:
            # An off-screen attacker wounds the guard between ticks.
            world.set_state("Guard", guard, hp=6)
            print("  !! guard takes a hit")
        world.tick()
        row = world.get_object("Guard", guard)
        print(
            f"tick {tick}: x={row['x']:5.1f}  hp={row['hp']}  "
            f"patrol step={int(row['__pc_patrol'])}  handlers fired={world.reports[-1].handlers_fired}"
        )


if __name__ == "__main__":
    main()
