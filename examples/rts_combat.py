"""RTS combat demo: compiled vs. interpreted execution of the same game.

Runs the Warcraft-style combat workload both ways, verifies they agree, and
prints the per-tick timings — a miniature of experiment E2.

Run with:  python examples/rts_combat.py
"""

import time

from repro import ExecutionMode
from repro.runtime.debug import explain_script_plans
from repro.workloads import build_rts_world

N_UNITS = 250
TICKS = 5


def run(mode: ExecutionMode) -> tuple[float, list]:
    world = build_rts_world(N_UNITS, mode=mode, seed=99)
    start = time.perf_counter()
    world.run(TICKS)
    elapsed = time.perf_counter() - start
    survivors = [u for u in world.objects("Unit") if u["health"] > 0]
    return elapsed, sorted((u["id"], round(u["health"], 6)) for u in survivors)


def main() -> None:
    compiled_time, compiled_state = run(ExecutionMode.COMPILED)
    interpreted_time, interpreted_state = run(ExecutionMode.INTERPRETED)
    assert compiled_state == interpreted_state, "execution strategies diverged!"
    print(f"{N_UNITS} units, {TICKS} ticks")
    print(f"  compiled   (set-at-a-time):    {compiled_time:.3f}s")
    print(f"  interpreted (object-at-a-time): {interpreted_time:.3f}s")
    print(f"  speedup: {interpreted_time / compiled_time:.1f}x")
    print(f"  surviving units: {len(compiled_state)} (identical under both strategies)")

    print("\nCompiled plan for the 'engage' script (first lines):")
    world = build_rts_world(50, mode=ExecutionMode.COMPILED)
    world.tick()
    print("\n".join(explain_script_plans(world, "engage", analyze=True).splitlines()[:14]))


if __name__ == "__main__":
    main()
