"""Quickstart: define a class and a script, run a few ticks, inspect state.

Run with:  python examples/quickstart.py
"""

from repro import ExecutionMode, GameWorld
from repro.runtime.debug import TickInspector

SOURCE = """
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number health = 100;
    number range = 6;
  effects:
    number damage : sum;
}

// Figure 2 of the paper: count the enemies in range, then hurt them all a
// little by proxy (each enemy in range deals one point of damage to us).
script skirmish(Unit self) {
  accum number enemies with sum over Unit u from Unit {
    if (u.player != player &&
        u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      enemies <- 1;
    }
  } in {
    if (enemies > 0) { damage <- enemies; }
  }
}
"""


def main() -> None:
    world = GameWorld(SOURCE, mode=ExecutionMode.COMPILED)
    # Update rule (Section 2.2 of the paper): health = health - damage.
    world.add_update_rule("Unit", "health", lambda state, effects: state["health"] - effects.get("damage", 0))

    # Two small armies facing each other.
    for i in range(10):
        world.spawn("Unit", player=0, x=float(i), y=0.0)
        world.spawn("Unit", player=1, x=float(i), y=3.0)

    for _ in range(5):
        report = world.tick()
        total_health = sum(u["health"] for u in world.objects("Unit"))
        print(
            f"tick {report.tick}: {report.effect_assignments} combined effects, "
            f"total health {total_health}"
        )

    inspector = TickInspector(world)
    print("\nEffects received by unit 0 in the last tick:")
    print(inspector.effects_of("Unit", 0))


if __name__ == "__main__":
    main()
