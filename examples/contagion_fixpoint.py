"""Supply-chain contagion: recursive fixpoint plans streamed to a client.

A road network of supply sites runs server-side.  Infected sites spread
disruption with the SGL ``reach`` construct — compiled to one semi-naive
Fixpoint plan that closes over the road relation for *all* outbreak
sources at once, a bounded number of hops per tick.  A monitoring client
subscribes to the infected-site roster and watches the outbreak front
advance purely from the delta stream, while the server churns road links
between ticks (re-routing) and seeds a second outbreak mid-run.  Run it:

    PYTHONPATH=src python examples/contagion_fixpoint.py
"""

import asyncio
import random

from repro.service.server import SubscriptionClient, SubscriptionServer
from repro.workloads.contagion import build_contagion_world, churn_links, infect

N_SITES = 80
TICKS = 6
CHURN = 0.02  # fraction of road links rewired between ticks


async def main() -> None:
    world = build_contagion_world(N_SITES, seed=7, n_chords=1)
    rng = random.Random(41)
    server = SubscriptionServer(world)
    await server.start()
    host, port = server.address
    print(f"subscription server on {host}:{port} — {world.count('Site')} supply sites")

    client = SubscriptionClient(host, port)
    await client.connect()
    outbreak_sub = await client.subscribe_table("Site", filter=[["infected", "==", 1]])
    print(f"subscribed to outbreak roster -> {len(client.rows(outbreak_sub))} infected")

    for tick in range(TICKS):
        await server.step()  # closure recomputed once, deltas fanned out
        await client.pump()
        report = world.reports[-1]
        infected = client.rows(outbreak_sub)
        print(
            f"tick {tick}: {len(infected)} infected sites, fixpoint closed in "
            f"{report.fixpoint_rounds} rounds ({report.fixpoint_delta_rows} delta rows), "
            f"stream applied {client.results[outbreak_sub].deltas_applied} deltas"
        )
        rewired = churn_links(world, CHURN, rng)
        if tick == 1:
            infect(world, N_SITES // 2)
            print(f"tick {tick}: seeded second outbreak at site {N_SITES // 2} "
                  f"(and rewired {rewired} road links)")

    await client.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
