"""Sharded execution: one rts world split across two worker processes.

The coordinator partitions the map into axis strips, each worker process
runs a complete engine over its slice, and every tick ships only the
boundary rows — ownership handoffs and halo ghost replicas — between
shards.  The example verifies the headline property live: the sharded
fleet's state stays *identical* to a single-process run of the same
world, tick for tick, while the report shows what crossed the wire.

Run with:  python examples/sharded_world.py
"""

from repro.shard import ShardSpec, ShardedWorld
from repro.workloads.rts import build_rts_world, unit_rows

WORLD_SIZE = 300.0
N_UNITS = 200
TICKS = 5


def world_factory():
    """Builds one empty world; runs inside every worker process."""
    return build_rts_world(0, world_size=WORLD_SIZE)


def main() -> None:
    spec = ShardSpec(
        axis_column="x",
        world_min=0.0,
        world_max=WORLD_SIZE,
        halo_width=12.0,  # >= the widest script interaction range
        partitioned_classes=("Unit",),
    )
    rows = list(unit_rows(N_UNITS, world_size=WORLD_SIZE, seed=11))

    # The single-process oracle ticks the very same rows for comparison.
    oracle = world_factory()
    oracle.spawn_many("Unit", rows)

    with ShardedWorld(world_factory, spec, n_shards=2) as sharded:
        sharded.load({"Unit": rows})
        sharded.subscribe_aoi("observer", "Unit", radius=10.0, center=(150.0, 150.0))

        print(f"{N_UNITS} units on a {WORLD_SIZE:.0f}-wide map, 2 shards, cut at x=150")
        header = f"{'tick':>4} {'handoffs':>8} {'ghosts':>7} {'wire bytes':>10} {'match':>6}"
        print(header)
        print("-" * len(header))
        for _ in range(TICKS):
            oracle.tick()
            report = sharded.tick()
            expected = {row["id"]: row for row in oracle.objects("Unit")}
            match = sharded.gather_state()["Unit"] == expected
            print(
                f"{report.tick:>4} {report.handoff_rows:>8} {report.halo_rows:>7} "
                f"{report.exchange_bytes:>10} {'yes' if match else 'NO':>6}"
            )
            assert match, "sharded state diverged from the single-process oracle"

    print("sharded run matched the single-process world on every tick")


if __name__ == "__main__":
    main()
