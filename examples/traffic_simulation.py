"""Traffic simulation example (the large-scale simulation of Section 4.2).

Runs the car-following workload on a single engine, then partitions the
same vehicles across a simulated shared-nothing cluster and reports how the
per-tick critical path and per-node index memory change with the node count
and network latency.

Run with:  python examples/traffic_simulation.py
"""

import random

from repro.engine.distributed import Cluster, DistributedRangeIndex, NetworkModel, SpatialPartitioner
from repro.workloads import build_traffic_world


def main() -> None:
    # 1. The single-node game world.
    world = build_traffic_world(400, n_lanes=4, road_length=2000.0)
    for _ in range(5):
        world.tick()
    velocities = [v["velocity"] for v in world.objects("Vehicle")]
    print(f"single node: 400 vehicles, mean velocity {sum(velocities) / len(velocities):.2f}")

    # 2. The same population on a simulated cluster.
    rng = random.Random(0)
    rows = [
        {"id": i, "x": rng.uniform(0, 2000), "y": rng.uniform(0, 60), "range": 12.0}
        for i in range(400)
    ]
    print("\nnodes  latency   simulated tick (s)  ghost rows  max shard MiB")
    for nodes in (1, 2, 4, 8):
        for latency in (0.0005, 0.02):
            cluster = Cluster(
                nodes,
                SpatialPartitioner("x", n_partitions=nodes, world_max=2000.0),
                NetworkModel(latency_s=latency),
            )
            cluster.load(rows)
            result = cluster.run_range_query_tick(["x", "y"], "range", lambda a, b: {"id": a["id"]})
            index = DistributedRangeIndex(
                ["x", "y"], SpatialPartitioner("x", n_partitions=nodes, world_max=2000.0)
            )
            index.build([((r["x"], r["y"]), r["id"]) for r in rows])
            print(
                f"{nodes:5d}  {latency:7.4f}  {result.simulated_tick_seconds:18.4f}  "
                f"{result.ghost_rows_shipped:10d}  {index.max_shard_bytes() / 2**20:13.3f}"
            )


if __name__ == "__main__":
    main()
