"""Live metrics: tick a world, scrape it over HTTP like Prometheus would.

``GameWorld.attach_metrics`` feeds every tick's report into a zero-dependency
metrics registry — per-phase latency histograms, cumulative engine counters,
last-tick gauges — and :class:`repro.obs.MetricsServer` serves that registry
in Prometheus text exposition format on ``/metrics`` (plus a ``/healthz``
probe).  Point a real Prometheus at the printed address, or load the
exported Chrome trace in https://ui.perfetto.dev to see where each tick's
time went, phase by phase.

Run with:  python examples/metrics_endpoint.py
"""

import asyncio

from repro.obs import MetricsServer, scrape
from repro.workloads.rts import build_rts_world

TICKS = 5


async def main() -> None:
    world = build_rts_world(120)
    metrics = world.attach_metrics()
    tracer = world.attach_tracer()
    for _ in range(TICKS):
        world.tick()

    server = MetricsServer(
        metrics.registry, health=lambda: {"tick": world.tick_count}
    )
    await server.start()
    host, port = server.address
    print(f"serving /metrics on http://{host}:{port}  (tick={world.tick_count})")

    status, body = await scrape(host, port)
    assert status == 200, status
    lines = body.splitlines()

    # The scrape must carry populated per-phase latency histograms.
    phase_counts = [
        line for line in lines if line.startswith("repro_tick_phase_seconds_count")
    ]
    assert phase_counts, "phase histograms missing from the scrape"
    assert all(line.endswith(f" {TICKS}") for line in phase_counts), phase_counts
    assert f"repro_ticks_total {TICKS}" in lines

    print("\nscrape excerpt:")
    for line in lines:
        if line.startswith(("repro_ticks_total", "repro_tick ", "repro_tick_phase_seconds_count")):
            print(f"  {line}")

    status, health = await scrape(host, port, "/healthz")
    print(f"\n/healthz -> {status} {health.strip()}")

    quantiles = metrics.phase_quantiles()
    print("\nper-phase latency percentiles (ms):")
    for phase, q in quantiles.items():
        print(
            f"  {phase:<8} p50={q['p50'] * 1000:7.3f}  "
            f"p95={q['p95'] * 1000:7.3f}  p99={q['p99'] * 1000:7.3f}"
        )

    print(f"\ntrace buffer: {len(tracer.events)} spans "
          f"(tracer.export('tick.trace.json') for Perfetto)")
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
