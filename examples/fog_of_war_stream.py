"""Fog of war over the wire: AOI subscriptions streamed as deltas.

An RTS world runs server-side; a client connects over TCP (JSON lines),
subscribes to an area-of-interest view following one of its units plus a
standing "my team" roster query, and maintains both views purely from the
snapshot-then-delta stream — no polling, no re-queries.  Run it:

    PYTHONPATH=src python examples/fog_of_war_stream.py
"""

import asyncio

from repro.service.server import SubscriptionClient, SubscriptionServer
from repro.workloads.rts import build_rts_world

OBSERVER_ID = 4
VISION = 14.0
TICKS = 8


async def main() -> None:
    world = build_rts_world(80, seed=17)
    server = SubscriptionServer(world)  # port 0: pick a free port
    await server.start()
    host, port = server.address
    print(f"subscription server on {host}:{port} — world of {world.count('Unit')} units")

    client = SubscriptionClient(host, port)
    await client.connect()
    vision_sub = await client.subscribe_aoi("Unit", radius=VISION, observer_id=OBSERVER_ID)
    roster_sub = await client.subscribe_table("Unit", filter=[["player", "==", 0]])
    print(
        f"subscribed: AOI (unit {OBSERVER_ID}, vision {VISION}) -> initial "
        f"{len(client.rows(vision_sub))} visible; team roster -> "
        f"{len(client.rows(roster_sub))} units"
    )

    for tick in range(TICKS):
        await server.step()  # one world tick: deltas computed once, fanned out
        await client.pump()
        visible = client.rows(vision_sub)
        enemies = [r for r in visible if r["player"] == 1]
        print(
            f"tick {tick}: observer sees {len(visible)} units "
            f"({len(enemies)} hostile), roster {len(client.rows(roster_sub))}, "
            f"stream applied {client.results[vision_sub].deltas_applied} deltas "
            f"/ {client.results[vision_sub].snapshots_applied} snapshots"
        )

    report = world.reports[-1]
    print(
        f"last tick: flush {report.flush_seconds * 1e3:.2f} ms for "
        f"{report.subscription_messages} messages "
        f"({report.subscription_delta_rows} delta rows)"
    )
    await client.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
