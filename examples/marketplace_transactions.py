"""Marketplace example: atomic exchanges, constraints, and duping prevention.

Demonstrates Section 3.1 of the paper: buyers issue atomic purchase blocks
with `gold >= 0` and `stock >= 0` constraints; the transaction engine admits
a consistent subset each tick, so items are never sold twice and balances
never go negative.

Run with:  python examples/marketplace_transactions.py
"""

from repro.workloads import build_marketplace_world


def main() -> None:
    world = build_marketplace_world(
        n_buyers=24, buyers_per_item=6, seller_stock=3, buyer_gold=35.0, price=10.0
    )
    print("tick  submitted  committed  aborted  abort_rate")
    for _ in range(4):
        report = world.tick()
        tx = world.last_transaction_report
        print(
            f"{report.tick:4d}  {report.transactions_submitted:9d}  {tx.commit_count:9d}  "
            f"{tx.abort_count:7d}  {tx.abort_rate:10.2f}"
        )

    traders = world.objects("Trader")
    sellers = [t for t in traders if t["is_seller"] == 1]
    buyers = [t for t in traders if t["is_seller"] == 0]
    print(f"\nsellers: remaining stock {[t['stock'] for t in sellers]}, gold {[t['gold'] for t in sellers]}")
    print(f"buyers holding items: {sum(1 for b in buyers if b['stock'] > 0)} / {len(buyers)}")
    assert all(t["stock"] >= 0 for t in traders), "an item was duplicated!"
    assert all(t["gold"] >= 0 for t in traders), "a balance went negative!"
    print("invariants hold: no duping, no negative balances.")


if __name__ == "__main__":
    main()
